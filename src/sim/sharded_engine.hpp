// Sharded conservative-synchronization PDES engine.
//
// N independent Simulators (one timing wheel, RNG stream, and clock each)
// advance in lockstep LBTS rounds on worker threads:
//
//   1. drain   — each shard empties its inbound SPSC channels, sorts the
//                messages by (when, src_shard, send_seq), and schedules
//                them locally.  The sort makes local seq assignment — and
//                therefore each shard's event_order_hash — independent of
//                thread timing.
//   2. reduce  — each shard publishes its earliest pending event time;
//                after a barrier, worker 0 folds them into
//                LBTS = min over shards, and the safe horizon is
//                LBTS + lookahead.
//   3. execute — each shard runs every event strictly BEFORE the horizon
//                (Simulator::run_before).  Cross-shard sends made while
//                executing must carry `when >= sender_now + lookahead`,
//                which post() enforces; combined with events never running
//                before LBTS, every send lands at or past the horizon, so
//                no shard can receive an event in its own past.
//
// The engine terminates when LBTS is +inf (every queue empty and no
// message in flight — channels are always fully drained at a round start,
// so emptiness of the queues implies emptiness of the system).
//
// Batched horizons (opt-in, enable_batched_horizons): instead of the one
// global horizon LBTS + lookahead, the reduce derives a per-shard horizon
//
//   H_i = min( min_{j != i} m_j + la,  min_all m_j + 2*la )
//
// where m_j is shard j's earliest pending event at the reduce.  Safety:
// channels are empty at the reduce, so any event shard i could still
// receive is produced by some shard executing a pending event.  A direct
// send from j != i departs an event at t >= m_j and arrives >= m_j + la
// >= min_{j != i} m_j + la.  Any relayed chain (including one that starts
// at i itself) crosses >= 2 shard hops of >= la each from an event at
// >= min_all, arriving >= min_all + 2*la.  Every H_i >= the classic
// horizon, so each round executes at least as much work and wide fabrics
// spend measurably fewer barrier rounds (`lbts_rounds`).  Event seq
// assignment differs from the unbatched schedule, so per-shard hash
// goldens are pinned per (scenario, batching mode); the pre-existing
// mcast goldens all use the unbatched default.
//
// Asynchronous null-message mode (opt-in, enable_async_sync): the same
// three-phase round structure — same drain batches, same reduce values,
// same horizons, and therefore bit-identical per-shard hash vectors — but
// the three std::barrier rendezvous per round are replaced with
// Chandy–Misra–Bryant-style per-channel data-flow waits, so a shard only
// stalls on peers it actually depends on:
//
//   * Every cross-shard message is stamped with the sender's round and a
//     piggybacked EOT (earliest output time, sender_now + channel
//     lookahead).  Round stamps are monotone along a FIFO channel, so a
//     peeked message from a newer round certifies the drain batch in
//     progress is fully popped.
//   * Every shard store-releases its completed-round clock at each round
//     boundary, after the round's last push.  In shared memory that clock
//     is a continuously-available null message: an acquire read covering
//     round - 1 certifies the drain batch with no message traffic, and it
//     handles the dominant case of a producer blocked in its own next
//     drain (clock already at round - 1, reduce slot not yet published).
//   * A receiver still blocked after that raises the channel's demand
//     flag; the producer answers — at its round boundaries and from
//     inside its own spin loops, so mutually-blocked shards always unblock
//     each other — with an explicit null message (empty action) stamped
//     with its last completed round and a fresh EOT.
//   * The reduce is a per-shard atomic (round, value) slot instead of a
//     fold by worker 0: each shard publishes m_i(r) and reads every peer's
//     slot, computing the identical LBTS and horizons locally.  A slot is
//     released round-tagged, and cannot be overwritten while any reader
//     still needs it: shard j only reaches its round r+1 publish after
//     every peer certified completion of round r, which a peer does only
//     after consuming m_j(r).
//
// Deadlock freedom: order shards by the round they are in; a least-round
// shard's drain only needs peers' previous rounds, which they have all
// completed, so each of those peers either answers its demand flag from a
// spin loop (it is blocked itself), or reaches its next round boundary in
// finitely many events and answers there.  Termination is symmetric: every
// shard computes the same m-vector, so all observe LBTS = kNever at the
// same round and exit together; shard failures trip an abort flag that
// every spin loop polls.
//
// Determinism: with shard count fixed, the executed (when, seq) order of
// every shard is a pure function of the initial events and seeds — the
// drain sort removes the only interleaving-dependent input.  Across
// different shard counts the per-shard hash vector changes (seq values are
// assigned per queue); goldens therefore pin one vector per shard count.
// The sync mode is deliberately NOT part of the golden key: barrier and
// async runs replay the same round schedule and produce the same vectors.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_channel.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace nicmcast::sim {

class ShardedEngine {
 public:
  /// Sentinel "no pending work" LBTS contribution.
  static constexpr TimePoint kNever{std::numeric_limits<std::int64_t>::max()};

  /// Per-shard synchronization counters, reported through RunResult.
  struct ShardStats {
    std::uint64_t cross_shard_msgs_sent = 0;
    std::uint64_t cross_shard_msgs_received = 0;
    std::uint64_t horizon_stalls = 0;  // rounds this shard ran zero events
    std::uint64_t channel_spills = 0;  // sends that overflowed the ring
    // Async-mode synchronization counters; all stay zero in barrier mode.
    std::uint64_t null_msgs_sent = 0;      // demand answers this shard sent
    std::uint64_t null_msgs_demanded = 0;  // demand flags this shard raised
    std::uint64_t eot_advances = 0;        // inbound channel-clock advances
    std::uint64_t blocked_waits = 0;       // waits that actually spun
  };

  ShardedEngine(std::size_t shard_count, Duration lookahead,
                std::uint64_t base_seed = 0x9e3779b97f4a7c15ULL)
      : lookahead_(checked_lookahead(lookahead, "lookahead")) {
    if (shard_count == 0) {
      throw std::invalid_argument("ShardedEngine: shard_count must be >= 1");
    }
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      // Distinct odd seeds per shard: each wheel owns an independent
      // deterministic RNG stream, as the determinism contract requires.
      shards_.push_back(std::make_unique<Shard>(
          base_seed + 0x2545f4914f6cdd1dULL * (i + 1)));
    }
    channels_.resize(shard_count * shard_count);
    for (std::size_t from = 0; from < shard_count; ++from) {
      for (std::size_t to = 0; to < shard_count; ++to) {
        if (from != to) {
          channels_[from * shard_count + to] =
              std::make_unique<Channel>(lookahead_);
        }
      }
    }
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] Simulator& shard(std::size_t i) { return shards_.at(i)->sim; }

  /// Switches the reduce phase to per-shard batched horizons (see the
  /// header comment).  Changes each shard's event seq assignment — callers
  /// that pin hash goldens pin them per batching mode.  Call before run().
  void enable_batched_horizons(bool on) { batched_horizons_ = on; }
  [[nodiscard]] bool batched_horizons() const { return batched_horizons_; }

  /// Switches run() to the asynchronous null-message synchronization (see
  /// the header comment).  Same round schedule, same per-shard hashes —
  /// only the waiting changes, so this composes with either horizon mode.
  /// Call before run().
  void enable_async_sync(bool on) { async_sync_ = on; }
  [[nodiscard]] bool async_sync() const { return async_sync_; }

  /// Overrides the lookahead of the ordered channel from → to.  The async
  /// mode stamps this channel's EOTs with it and post() enforces it as the
  /// send window, so a pair of shards joined only by slow cut links can
  /// promise more than the fabric-wide floor.  It must be >= the engine's
  /// global lookahead: safe horizons are derived from the global minimum,
  /// and a smaller per-channel value would let a send land inside a peer's
  /// already-released horizon.  Call before run().
  void set_channel_lookahead(std::size_t from, std::size_t to, Duration la) {
    if (from >= shards_.size() || to >= shards_.size() || from == to) {
      throw std::out_of_range(
          "ShardedEngine::set_channel_lookahead: bad channel");
    }
    checked_lookahead(la, "channel lookahead");
    if (la < lookahead_) {
      throw std::invalid_argument(
          "ShardedEngine: channel lookahead below the engine-wide lookahead "
          "— safe horizons derive from the global minimum");
    }
    channels_[from * shards_.size() + to]->lookahead = la;
  }

  [[nodiscard]] Duration channel_lookahead(std::size_t from,
                                           std::size_t to) const {
    if (from >= shards_.size() || to >= shards_.size() || from == to) {
      throw std::out_of_range("ShardedEngine::channel_lookahead: bad channel");
    }
    return channels_[from * shards_.size() + to]->lookahead;
  }

  /// Schedules `action` on shard `to` at absolute time `when`.  Same-shard
  /// posts schedule directly; cross-shard posts must respect the channel's
  /// lookahead (when >= sender's now + lookahead; every channel lookahead
  /// is validated > 0 by checked_lookahead) and travel through the channel
  /// matrix.  May only be called from shard `from`'s worker thread while
  /// run() is executing that shard (or from any thread before run()).
  void post(std::size_t from, std::size_t to, TimePoint when,
            EventQueue::Action action) {
    if (from >= shards_.size() || to >= shards_.size()) {
      throw std::out_of_range("ShardedEngine::post: bad shard index");
    }
    if (from == to) {
      shards_[to]->sim.schedule_at(when, std::move(action));
      return;
    }
    Shard& sender = *shards_[from];
    Channel& ch = *channels_[from * shards_.size() + to];
    if (when < sender.sim.now() + ch.lookahead) {
      throw std::logic_error(
          "ShardedEngine::post: cross-shard send inside the lookahead "
          "window — the conservative horizon would be violated");
    }
    CrossMsg msg;
    msg.when = when;
    msg.seq = ch.send_seq++;
    msg.src = static_cast<std::uint32_t>(from);
    // Round stamp + piggybacked EOT: the async drain uses the stamp to cut
    // batch boundaries and the EOT to advance the receiver's channel
    // clock.  Barrier mode never reads either (round stays 0 pre-run and
    // during its worker loop), but stamping unconditionally keeps post()
    // branch-free.
    msg.round = sender.round;
    msg.eot = sender.sim.now() + ch.lookahead;
    msg.action = std::move(action);
    ++sender.stats.cross_shard_msgs_sent;
    // post() runs on shard `from`'s worker thread (the method contract
    // above), which is by construction the single producer of this channel.
    RoleGuard produce(ch.ring.producer_role());
    if (!ch.ring.try_push(std::move(msg))) {
      ++sender.stats.channel_spills;
      // Overflow hand-off is always mutex-guarded.  Only the async mode
      // *needs* the lock (a producer may spill while the consumer drains;
      // barrier mode orders the hand-off with the round barrier), but the
      // spill path is rare by design and one locking discipline keeps the
      // concurrency contract — and its static checking — unconditional.
      MutexLock lock(ch.spill_mu);
      ch.spill.push_back(std::move(msg));
    }
  }

  /// Runs every shard to completion.  Worker 0 executes on the calling
  /// thread; shards 1..N-1 get their own threads.  Rethrows the first
  /// shard failure (by shard order) after all workers have stopped.
  void run() {
    const std::size_t n = shards_.size();
    errors_.assign(n, nullptr);
    if (async_sync_) {
      {
        std::vector<std::jthread> workers;
        workers.reserve(n - 1);
        for (std::size_t i = 1; i < n; ++i) {
          workers.emplace_back([this, i] { worker_loop_async(i); });
        }
        worker_loop_async(0);
      }  // jthreads join here
    } else {
      std::barrier sync(static_cast<std::ptrdiff_t>(n));
      {
        std::vector<std::jthread> workers;
        workers.reserve(n - 1);
        for (std::size_t i = 1; i < n; ++i) {
          workers.emplace_back([this, &sync, i] { worker_loop(sync, i); });
        }
        worker_loop(sync, 0);
      }  // jthreads join here
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (errors_[i]) std::rethrow_exception(errors_[i]);
    }
  }

  [[nodiscard]] std::uint64_t lbts_rounds() const { return lbts_rounds_; }

  [[nodiscard]] const ShardStats& shard_stats(std::size_t i) const {
    return shards_.at(i)->stats;
  }

  /// The per-shard determinism contract: each shard's executed-order hash,
  /// in shard order.  Goldens pin this vector per (scenario, shard count).
  [[nodiscard]] std::vector<std::uint64_t> shard_order_hashes() const {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(shards_.size());
    for (const auto& s : shards_) {
      hashes.push_back(s->sim.event_order_hash());
    }
    return hashes;
  }

  /// FNV-1a fold of the per-shard hashes in shard order — one pinnable
  /// value for bench JSON, same construction as EventQueue::order_hash.
  [[nodiscard]] std::uint64_t merged_order_hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& s : shards_) {
      std::uint64_t v = s->sim.event_order_hash();
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffU;
        h *= 0x100000001b3ULL;
      }
    }
    return h;
  }

 private:
  /// "No null message requested" value of a channel's demand flag.
  static constexpr std::uint64_t kNoDemand = ~std::uint64_t{0};

  /// The one lookahead guard (constructor, per-channel overrides): a
  /// non-positive lookahead collapses the safe horizon onto LBTS itself
  /// and conservative PDES cannot guarantee progress, so every lookahead
  /// the engine accepts passes through here before post() relies on it.
  static Duration checked_lookahead(Duration la, const char* what) {
    if (la <= Duration{0}) {
      throw std::invalid_argument(std::string("ShardedEngine: ") + what +
                                  " must be > 0");
    }
    return la;
  }

  struct CrossMsg {
    TimePoint when{0};
    std::uint64_t seq = 0;   // per-channel send counter: the merge tiebreak
    std::uint32_t src = 0;
    std::uint64_t round = 0;  // sender's round at post time (async batching)
    TimePoint eot{0};         // earliest possible later send on this channel
    EventQueue::Action action;  // empty ⇒ a pure-synchronization null

    [[nodiscard]] bool is_null() const { return !action; }
  };

  struct Channel {
    explicit Channel(Duration la) : lookahead(la) {}
    SpscChannel<CrossMsg> ring{1024};
    // Guards `spill`: a producer may overflow the ring while the consumer
    // drains (async mode), so the hand-off vector is mutex-protected in
    // both sync modes — rare path, uncontended in barrier mode.
    Mutex spill_mu;
    std::vector<CrossMsg> spill NM_GUARDED_BY(spill_mu);  // ring overflow
    // Producer-owned monotone counter; writing it requires the ring's
    // producer role, which pins it to the single pushing thread.
    std::uint64_t send_seq NM_GUARDED_BY(ring.producer_role()){0};
    Duration lookahead;              // per-channel send window / EOT stride
    // Consumer-raised, producer-cleared: the round whose completion the
    // blocked receiver wants certified with a null message.  Release on
    // store / acquire on load so the producer's answer covers everything
    // the consumer published before demanding.
    std::atomic<std::uint64_t> demand{kNoDemand};
    // Consumer-owned channel clock, advanced only while draining.
    TimePoint eot NM_GUARDED_BY(ring.consumer_role()){0};
  };

  struct Shard {
    explicit Shard(std::uint64_t seed) : sim(seed) {}
    Simulator sim;
    ShardStats stats;
    // Written by the owning worker in the reduce phase, read by worker 0
    // after the barrier — the barrier provides the happens-before edge.
    TimePoint local_min{0};
    // Barrier mode: written by worker 0 between barriers, read by the
    // owning worker in the execute phase (same barrier edge).  Async mode:
    // owner-only.
    TimePoint horizon{0};
    // --- async-mode state ---
    // Owner-written: the round in progress, stamped onto outbound messages.
    std::uint64_t round = 0;
    // The producer's clock: the last round whose sends are all pushed,
    // store-released after the final push of that round.  Consumers read
    // it (acquire) as drain evidence — in shared memory this published
    // clock is a continuously-available null message, so the explicit
    // demand-null path below only fires when the producer is strictly
    // behind the round the consumer is draining.  Also the newest round a
    // demand null from this shard may certify.
    std::atomic<std::uint64_t> completed{0};
    // Single-slot reduce publication: value stored relaxed, round released
    // after it, so an acquire of m_round >= r sees the round-r value and
    // every channel push that preceded the publish.  One slot suffices —
    // the shard cannot reach its round r+1 publish until every peer has
    // certified round r complete, which a peer does only after consuming
    // m(r) in its own reduce (see the header deadlock/overwrite argument).
    std::atomic<std::int64_t> m_value{0};
    std::atomic<std::uint64_t> m_round{0};
    alignas(64) char pad_[1]{};  // keep shard hot state off shared lines
  };

  /// The reduce fold both sync modes share: LBTS plus the two smallest
  /// contributions (min over j != i is then O(1) per shard: m2 when i
  /// holds the minimum, m1 otherwise).
  struct ReduceSummary {
    TimePoint lbts = kNever;
    TimePoint m1 = kNever, m2 = kNever;
    std::size_t argmin = 0;
  };

  static ReduceSummary summarize(const std::vector<TimePoint>& mins) {
    ReduceSummary r;
    for (std::size_t i = 0; i < mins.size(); ++i) {
      const TimePoint m = mins[i];
      if (m < r.m1) {
        r.m2 = r.m1;
        r.m1 = m;
        r.argmin = i;
      } else if (m < r.m2) {
        r.m2 = m;
      }
    }
    r.lbts = r.m1;
    return r;
  }

  /// Shard i's execute horizon for this round — a pure function of the
  /// reduce summary, so the barrier fold (worker 0) and the async local
  /// computation (every shard, same m-vector) agree bit-for-bit.
  [[nodiscard]] TimePoint horizon_for(std::size_t i,
                                      const ReduceSummary& r) const {
    if (!batched_horizons_) return r.lbts + lookahead_;
    const TimePoint min_others = i == r.argmin ? r.m2 : r.m1;
    // kNever marks "every other shard idle": only the relayed-chain bound
    // applies, and kNever + lookahead must not be formed (the sentinel is
    // int64 max; the sum would overflow).
    const TimePoint direct_bound =
        min_others == kNever ? kNever : min_others + lookahead_;
    const TimePoint chain_bound = r.lbts + lookahead_ + lookahead_;
    return std::min(direct_bound, chain_bound);
  }

  void worker_loop(std::barrier<>& sync, std::size_t me) {
    Shard& my = *shards_[me];
    std::vector<CrossMsg> pending;
    std::vector<TimePoint> mins;
    if (me == 0) mins.resize(shards_.size());
    while (true) {
      // ---- Phase 1: drain inbound channels, deterministic merge ----
      pending.clear();
      try {
        for (std::size_t src = 0; src < shards_.size(); ++src) {
          if (src == me) continue;
          Channel& ch = *channels_[src * shards_.size() + me];
          // This worker is the single consumer of its inbound channels.
          RoleGuard consume(ch.ring.consumer_role());
          CrossMsg msg;
          while (ch.ring.try_pop(msg)) pending.push_back(std::move(msg));
          MutexLock lock(ch.spill_mu);
          for (CrossMsg& spilled : ch.spill) {
            pending.push_back(std::move(spilled));
          }
          ch.spill.clear();
        }
        merge_and_schedule(me, pending);
      } catch (...) {
        fail(me);
      }
      // ---- Phase 2: publish LBTS contribution ----
      my.local_min =
          my.sim.pending_events() > 0 ? my.sim.next_event_time() : kNever;
      sync.arrive_and_wait();
      if (me == 0) {
        for (std::size_t i = 0; i < shards_.size(); ++i) {
          mins[i] = shards_[i]->local_min;
        }
        const ReduceSummary reduce = summarize(mins);
        if (reduce.lbts == kNever ||
            abort_.load(std::memory_order_relaxed)) {
          // Relaxed store: the barrier below publishes it to every reader.
          halt_.store(true, std::memory_order_relaxed);
        } else {
          for (std::size_t i = 0; i < shards_.size(); ++i) {
            shards_[i]->horizon = horizon_for(i, reduce);
          }
          ++lbts_rounds_;
        }
      }
      sync.arrive_and_wait();
      if (halt_.load(std::memory_order_relaxed)) break;
      // ---- Phase 3: execute strictly below the safe horizon ----
      try {
        const std::size_t executed = my.sim.run_before(my.horizon);
        if (executed == 0 && my.sim.pending_events() > 0) {
          // This shard's earliest event sits exactly at or beyond the
          // horizon (the lookahead-edge case); it waits for the next round.
          ++my.stats.horizon_stalls;
        }
      } catch (...) {
        fail(me);
      }
      sync.arrive_and_wait();
    }
  }

  /// The async twin of worker_loop: identical round schedule, no barriers.
  /// Phase waits are per-dependency — a channel drain blocks only until
  /// that channel's batch is certified, the reduce blocks only on peers
  /// whose slot has not reached this round yet.
  void worker_loop_async(std::size_t me) {
    Shard& my = *shards_[me];
    const std::size_t n = shards_.size();
    std::vector<CrossMsg> pending;
    std::vector<TimePoint> mins(n);
    for (std::uint64_t round = 1;; ++round) {
      my.round = round;
      // ---- Phase 1: drain, per channel, gated on round certification ----
      pending.clear();
      bool aborted = false;
      try {
        for (std::size_t src = 0; src < n; ++src) {
          if (src == me) continue;
          if (!drain_channel_async(src, me, round, pending)) {
            aborted = true;
            break;
          }
        }
        if (!aborted) merge_and_schedule(me, pending);
      } catch (...) {
        fail(me);
      }
      if (aborted || abort_.load(std::memory_order_relaxed)) break;
      // ---- Phase 2: slot-publish m(round); read every peer's m(round) ----
      const TimePoint local_min =
          my.sim.pending_events() > 0 ? my.sim.next_event_time() : kNever;
      my.m_value.store(local_min.nanoseconds(), std::memory_order_relaxed);
      my.m_round.store(round, std::memory_order_release);
      for (std::size_t j = 0; j < n && !aborted; ++j) {
        if (j == me) {
          mins[j] = local_min;
          continue;
        }
        Shard& peer = *shards_[j];
        if (peer.m_round.load(std::memory_order_acquire) < round) {
          ++my.stats.blocked_waits;
          unsigned spins = 0;
          while (peer.m_round.load(std::memory_order_acquire) < round) {
            if (abort_.load(std::memory_order_relaxed)) {
              aborted = true;
              break;
            }
            answer_demands(me);
            spin_relax(spins);
          }
        }
        if (!aborted) {
          mins[j] = TimePoint{peer.m_value.load(std::memory_order_relaxed)};
        }
      }
      if (aborted) break;
      const ReduceSummary reduce = summarize(mins);
      // Every shard folds the same m-vector: all observe the all-idle
      // LBTS at the same round and exit together.
      if (reduce.lbts == kNever) break;
      if (me == 0) ++lbts_rounds_;
      my.horizon = horizon_for(me, reduce);
      // ---- Phase 3: execute strictly below the safe horizon ----
      try {
        const std::size_t executed = my.sim.run_before(my.horizon);
        if (executed == 0 && my.sim.pending_events() > 0) {
          ++my.stats.horizon_stalls;
        }
      } catch (...) {
        fail(me);
      }
      // Round complete: every send of this round is pushed.  Release the
      // clock before re-entering the drain — blocked receivers certify off
      // it directly, and any demand raised meanwhile is answered below.
      my.completed.store(round, std::memory_order_release);
      answer_demands(me);
      if (abort_.load(std::memory_order_relaxed)) break;
    }
  }

  /// Drains every message the producer sent during rounds < `round` from
  /// channel src → me into `pending`.  Returns false only when the global
  /// abort flag tripped while waiting.  Completion of the batch is
  /// certified by (a) a peeked or spilled message from a newer round
  /// (stamps are FIFO-monotone), (b) a null message stamped at or past
  /// round - 1, or (c) the producer's completed-round clock reaching
  /// round - 1 (released after its last push of that round, so the acquire
  /// read covers every batch message — and, unlike the reduce slot, it is
  /// published at the round *boundary*, which certifies the common case of
  /// a producer blocked in its own next drain without any null traffic).
  /// While none of those hold the receiver raises the channel's demand
  /// flag and spins — answering its own inbound demands so mutually-
  /// blocked shards make progress.
  bool drain_channel_async(std::size_t src, std::size_t me,
                           std::uint64_t round,
                           std::vector<CrossMsg>& pending) {
    Shard& my = *shards_[me];
    Channel& ch = *channels_[src * shards_.size() + me];
    // The drain runs on shard `me`'s worker — the channel's one consumer.
    RoleGuard consume(ch.ring.consumer_role());
    const std::uint64_t want = round - 1;  // newest round in this batch
    // Pops every available batch message; true once the batch is certified
    // complete.  Nulls never reach `pending`; both kinds advance the
    // consumer-side channel clock when they carry a newer EOT.
    const auto sweep = [&]() -> bool {
      // Clang's capability analysis treats the lambda as a separate
      // function; re-state the role the enclosing guard holds.
      ch.ring.consumer_role().assert_held();
      while (const CrossMsg* head = ch.ring.try_peek()) {
        if (head->round > want) return true;  // newer round: batch is done
        CrossMsg msg;
        const bool popped = ch.ring.try_pop(msg);
        (void)popped;  // cannot fail: the consumer just peeked this slot
        if (msg.eot > ch.eot) {
          ch.eot = msg.eot;
          ++my.stats.eot_advances;
        }
        if (msg.is_null()) {
          // A null stamped `r` certifies every round <= r fully pushed
          // (FIFO: it was pushed after them).  Stale ones — answers to a
          // demand this drain no longer needs — just advance the clock.
          if (msg.round >= want) return true;
        } else {
          pending.push_back(std::move(msg));
        }
      }
      return false;
    };
    bool demanded = false;
    unsigned spins = 0;
    for (;;) {
      if (sweep()) break;
      if (shards_[src]->completed.load(std::memory_order_acquire) >= want) {
        // Every batch message is already pushed (the clock's release
        // ordered them first); one final sweep collects stragglers the
        // first pass raced.
        sweep();
        break;
      }
      if (abort_.load(std::memory_order_relaxed)) return false;
      if (!demanded) {
        demanded = true;
        ++my.stats.null_msgs_demanded;
        ++my.stats.blocked_waits;
      }
      // Re-asserted every iteration: the producer may have cleared the
      // flag while answering an older demand.
      ch.demand.store(want, std::memory_order_release);
      answer_demands(me);
      spin_relax(spins);
    }
    if (demanded) ch.demand.store(kNoDemand, std::memory_order_release);
    // Spilled messages: lift this batch's rounds out under the spill
    // mutex.  Newer-round spills (the producer ran ahead while its ring
    // was full) stay behind for the next drain.
    {
      MutexLock lock(ch.spill_mu);
      auto keep = ch.spill.begin();
      for (auto it = ch.spill.begin(); it != ch.spill.end(); ++it) {
        if (it->round > want) {
          if (keep != it) *keep = std::move(*it);
          ++keep;
          continue;
        }
        if (it->eot > ch.eot) {
          ch.eot = it->eot;
          ++my.stats.eot_advances;
        }
        if (!it->is_null()) pending.push_back(std::move(*it));
      }
      ch.spill.erase(keep, ch.spill.end());
    }
    return true;
  }

  /// Producer-side demand service: push a null message certifying this
  /// shard's last completed round on every outbound channel whose consumer
  /// raised a demand it can satisfy.  Called at round boundaries and from
  /// inside every spin loop, so a blocked shard still serves its peers.
  void answer_demands(std::size_t me) {
    Shard& my = *shards_[me];
    // Owner thread: relaxed is enough, the release happened at the store.
    const std::uint64_t completed =
        my.completed.load(std::memory_order_relaxed);
    for (std::size_t to = 0; to < shards_.size(); ++to) {
      if (to == me) continue;
      Channel& ch = *channels_[me * shards_.size() + to];
      const std::uint64_t want = ch.demand.load(std::memory_order_acquire);
      if (want == kNoDemand || completed < want) continue;
      ch.demand.store(kNoDemand, std::memory_order_release);
      CrossMsg null_msg;
      null_msg.when = kNever;
      null_msg.src = static_cast<std::uint32_t>(me);
      null_msg.round = completed;
      null_msg.eot = my.sim.now() + ch.lookahead;
      // action left empty: a null never schedules anything.
      ++my.stats.null_msgs_sent;
      // answer_demands runs on shard `me`'s worker — the producer of every
      // outbound channel it services.
      RoleGuard produce(ch.ring.producer_role());
      if (!ch.ring.try_push(std::move(null_msg))) {
        ++my.stats.channel_spills;
        MutexLock lock(ch.spill_mu);
        ch.spill.push_back(std::move(null_msg));
      }
    }
  }

  /// The deterministic merge both sync modes share: sort the drained batch
  /// by (when, src_shard, send_seq) and schedule, so local seq assignment
  /// never depends on thread timing.
  void merge_and_schedule(std::size_t me, std::vector<CrossMsg>& pending) {
    Shard& my = *shards_[me];
    std::sort(pending.begin(), pending.end(),
              [](const CrossMsg& a, const CrossMsg& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    my.stats.cross_shard_msgs_received += pending.size();
    for (CrossMsg& msg : pending) {
      my.sim.schedule_at(msg.when, std::move(msg.action));
    }
  }

  /// One spin-wait step: a pause-class hint while the wait is short, a
  /// scheduler yield once it is clearly not (CI runs more shards than
  /// cores; a pure busy spin would starve the peer being waited on).
  static void spin_relax(unsigned& spins) {
    if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#else
      std::this_thread::yield();
#endif
    } else {
      spins = 0;
      std::this_thread::yield();
    }
  }

  /// Records the shard's failure and trips the abort flag.  In barrier
  /// mode the worker keeps participating in barriers so no peer deadlocks;
  /// in async mode every spin loop polls the flag and unwinds.
  void fail(std::size_t me) {
    if (!errors_[me]) errors_[me] = std::current_exception();
    abort_.store(true, std::memory_order_relaxed);
  }

  Duration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [from * N + to]
  // Indexed by shard; each slot written only by its own worker (fail()),
  // read after the workers joined.
  std::vector<std::exception_ptr> errors_;
  // Monotone false→true flag.  All accesses relaxed: readers act on it
  // only to stop early, and the join / barrier at the end of run()
  // provides the ordering for everything written before the abort.
  std::atomic<bool> abort_{false};
  bool batched_horizons_ = false;
  bool async_sync_ = false;
  // Barrier mode only: written by worker 0 between barriers, read by all
  // after the next one.  The barrier is the ordering edge, so both sides
  // are relaxed; atomic because writer and readers are different threads.
  std::atomic<bool> halt_{false};
  std::uint64_t lbts_rounds_ = 0;
};

}  // namespace nicmcast::sim

// Sharded conservative-synchronization PDES engine.
//
// N independent Simulators (one timing wheel, RNG stream, and clock each)
// advance in lockstep LBTS rounds on worker threads:
//
//   1. drain   — each shard empties its inbound SPSC channels, sorts the
//                messages by (when, src_shard, send_seq), and schedules
//                them locally.  The sort makes local seq assignment — and
//                therefore each shard's event_order_hash — independent of
//                thread timing.
//   2. reduce  — each shard publishes its earliest pending event time;
//                after a barrier, worker 0 folds them into
//                LBTS = min over shards, and the safe horizon is
//                LBTS + lookahead.
//   3. execute — each shard runs every event strictly BEFORE the horizon
//                (Simulator::run_before).  Cross-shard sends made while
//                executing must carry `when >= sender_now + lookahead`,
//                which post() enforces; combined with events never running
//                before LBTS, every send lands at or past the horizon, so
//                no shard can receive an event in its own past.
//
// The engine terminates when LBTS is +inf (every queue empty and no
// message in flight — channels are always fully drained at a round start,
// so emptiness of the queues implies emptiness of the system).
//
// Batched horizons (opt-in, enable_batched_horizons): instead of the one
// global horizon LBTS + lookahead, worker 0 derives a per-shard horizon
//
//   H_i = min( min_{j != i} m_j + la,  min_all m_j + 2*la )
//
// where m_j is shard j's earliest pending event at the reduce.  Safety:
// channels are empty at the reduce, so any event shard i could still
// receive is produced by some shard executing a pending event.  A direct
// send from j != i departs an event at t >= m_j and arrives >= m_j + la
// >= min_{j != i} m_j + la.  Any relayed chain (including one that starts
// at i itself) crosses >= 2 shard hops of >= la each from an event at
// >= min_all, arriving >= min_all + 2*la.  Every H_i >= the classic
// horizon, so each round executes at least as much work and wide fabrics
// spend measurably fewer barrier rounds (`lbts_rounds`).  Event seq
// assignment differs from the unbatched schedule, so per-shard hash
// goldens are pinned per (scenario, batching mode); the pre-existing
// mcast goldens all use the unbatched default.
//
// Determinism: with shard count fixed, the executed (when, seq) order of
// every shard is a pure function of the initial events and seeds — the
// drain sort removes the only interleaving-dependent input.  Across
// different shard counts the per-shard hash vector changes (seq values are
// assigned per queue); goldens therefore pin one vector per shard count.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_channel.hpp"
#include "sim/time.hpp"

namespace nicmcast::sim {

class ShardedEngine {
 public:
  /// Sentinel "no pending work" LBTS contribution.
  static constexpr TimePoint kNever{std::numeric_limits<std::int64_t>::max()};

  /// Per-shard synchronization counters, reported through RunResult.
  struct ShardStats {
    std::uint64_t cross_shard_msgs_sent = 0;
    std::uint64_t cross_shard_msgs_received = 0;
    std::uint64_t horizon_stalls = 0;  // rounds this shard ran zero events
    std::uint64_t channel_spills = 0;  // sends that overflowed the ring
  };

  ShardedEngine(std::size_t shard_count, Duration lookahead,
                std::uint64_t base_seed = 0x9e3779b97f4a7c15ULL)
      : lookahead_(lookahead) {
    if (shard_count == 0) {
      throw std::invalid_argument("ShardedEngine: shard_count must be >= 1");
    }
    if (lookahead <= Duration{0}) {
      // Zero lookahead collapses the safe horizon onto LBTS itself and the
      // engine cannot guarantee progress; conservative PDES requires a
      // strictly positive cross-shard latency floor.
      throw std::invalid_argument("ShardedEngine: lookahead must be > 0");
    }
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      // Distinct odd seeds per shard: each wheel owns an independent
      // deterministic RNG stream, as the determinism contract requires.
      shards_.push_back(std::make_unique<Shard>(
          base_seed + 0x2545f4914f6cdd1dULL * (i + 1)));
    }
    channels_.resize(shard_count * shard_count);
    for (std::size_t from = 0; from < shard_count; ++from) {
      for (std::size_t to = 0; to < shard_count; ++to) {
        if (from != to) {
          channels_[from * shard_count + to] =
              std::make_unique<Channel>();
        }
      }
    }
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] Simulator& shard(std::size_t i) { return shards_.at(i)->sim; }

  /// Switches the reduce phase to per-shard batched horizons (see the
  /// header comment).  Changes each shard's event seq assignment — callers
  /// that pin hash goldens pin them per batching mode.  Call before run().
  void enable_batched_horizons(bool on) { batched_horizons_ = on; }
  [[nodiscard]] bool batched_horizons() const { return batched_horizons_; }

  /// Schedules `action` on shard `to` at absolute time `when`.  Same-shard
  /// posts schedule directly; cross-shard posts must respect the lookahead
  /// (when >= sender's now + lookahead) and travel through the channel
  /// matrix.  May only be called from shard `from`'s worker thread while
  /// run() is executing that shard (or from any thread before run()).
  void post(std::size_t from, std::size_t to, TimePoint when,
            EventQueue::Action action) {
    if (from >= shards_.size() || to >= shards_.size()) {
      throw std::out_of_range("ShardedEngine::post: bad shard index");
    }
    if (from == to) {
      shards_[to]->sim.schedule_at(when, std::move(action));
      return;
    }
    if (when < shards_[from]->sim.now() + lookahead_) {
      throw std::logic_error(
          "ShardedEngine::post: cross-shard send inside the lookahead "
          "window — the conservative horizon would be violated");
    }
    Channel& ch = *channels_[from * shards_.size() + to];
    CrossMsg msg;
    msg.when = when;
    msg.seq = ch.send_seq++;
    msg.src = static_cast<std::uint32_t>(from);
    msg.action = std::move(action);
    ++shards_[from]->stats.cross_shard_msgs_sent;
    if (!ch.ring.try_push(std::move(msg))) {
      // Producer-owned spill: the round barrier orders this hand-off, so
      // the vector needs no synchronization of its own.
      ch.spill.push_back(std::move(msg));
      ++shards_[from]->stats.channel_spills;
    }
  }

  /// Runs every shard to completion.  Worker 0 executes on the calling
  /// thread; shards 1..N-1 get their own threads.  Rethrows the first
  /// shard failure (by shard order) after all workers have stopped.
  void run() {
    const std::size_t n = shards_.size();
    errors_.assign(n, nullptr);
    std::barrier sync(static_cast<std::ptrdiff_t>(n));
    {
      std::vector<std::jthread> workers;
      workers.reserve(n - 1);
      for (std::size_t i = 1; i < n; ++i) {
        workers.emplace_back([this, &sync, i] { worker_loop(sync, i); });
      }
      worker_loop(sync, 0);
    }  // jthreads join here
    for (std::size_t i = 0; i < n; ++i) {
      if (errors_[i]) std::rethrow_exception(errors_[i]);
    }
  }

  [[nodiscard]] std::uint64_t lbts_rounds() const { return lbts_rounds_; }

  [[nodiscard]] const ShardStats& shard_stats(std::size_t i) const {
    return shards_.at(i)->stats;
  }

  /// The per-shard determinism contract: each shard's executed-order hash,
  /// in shard order.  Goldens pin this vector per (scenario, shard count).
  [[nodiscard]] std::vector<std::uint64_t> shard_order_hashes() const {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(shards_.size());
    for (const auto& s : shards_) {
      hashes.push_back(s->sim.event_order_hash());
    }
    return hashes;
  }

  /// FNV-1a fold of the per-shard hashes in shard order — one pinnable
  /// value for bench JSON, same construction as EventQueue::order_hash.
  [[nodiscard]] std::uint64_t merged_order_hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& s : shards_) {
      std::uint64_t v = s->sim.event_order_hash();
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xffU;
        h *= 0x100000001b3ULL;
      }
    }
    return h;
  }

 private:
  struct CrossMsg {
    TimePoint when{0};
    std::uint64_t seq = 0;   // per-channel send counter: the merge tiebreak
    std::uint32_t src = 0;
    EventQueue::Action action;
  };

  struct Channel {
    SpscChannel<CrossMsg> ring{1024};
    std::vector<CrossMsg> spill;     // producer-owned overflow
    std::uint64_t send_seq = 0;      // producer-owned
  };

  struct Shard {
    explicit Shard(std::uint64_t seed) : sim(seed) {}
    Simulator sim;
    ShardStats stats;
    // Written by the owning worker in the reduce phase, read by worker 0
    // after the barrier — the barrier provides the happens-before edge.
    TimePoint local_min{0};
    // Written by worker 0 between barriers, read by the owning worker in
    // the execute phase — the same barrier edge makes this race-free.
    TimePoint horizon{0};
    alignas(64) char pad_[1]{};  // keep shard hot state off shared lines
  };

  void worker_loop(std::barrier<>& sync, std::size_t me) {
    Shard& my = *shards_[me];
    std::vector<CrossMsg> pending;
    while (true) {
      // ---- Phase 1: drain inbound channels, deterministic merge ----
      pending.clear();
      try {
        for (std::size_t src = 0; src < shards_.size(); ++src) {
          if (src == me) continue;
          Channel& ch = *channels_[src * shards_.size() + me];
          CrossMsg msg;
          while (ch.ring.try_pop(msg)) pending.push_back(std::move(msg));
          for (CrossMsg& spilled : ch.spill) {
            pending.push_back(std::move(spilled));
          }
          ch.spill.clear();
        }
        std::sort(pending.begin(), pending.end(),
                  [](const CrossMsg& a, const CrossMsg& b) {
                    if (a.when != b.when) return a.when < b.when;
                    if (a.src != b.src) return a.src < b.src;
                    return a.seq < b.seq;
                  });
        my.stats.cross_shard_msgs_received += pending.size();
        for (CrossMsg& msg : pending) {
          my.sim.schedule_at(msg.when, std::move(msg.action));
        }
      } catch (...) {
        fail(me);
      }
      // ---- Phase 2: publish LBTS contribution ----
      my.local_min =
          my.sim.pending_events() > 0 ? my.sim.next_event_time() : kNever;
      sync.arrive_and_wait();
      if (me == 0) {
        TimePoint lbts = kNever;
        for (const auto& s : shards_) {
          if (s->local_min < lbts) lbts = s->local_min;
        }
        if (lbts == kNever || abort_.load(std::memory_order_relaxed)) {
          done_ = true;
        } else {
          assign_horizons(lbts);
          ++lbts_rounds_;
        }
      }
      sync.arrive_and_wait();
      if (done_) break;
      // ---- Phase 3: execute strictly below the safe horizon ----
      try {
        const std::size_t executed = my.sim.run_before(my.horizon);
        if (executed == 0 && my.sim.pending_events() > 0) {
          // This shard's earliest event sits exactly at or beyond the
          // horizon (the lookahead-edge case); it waits for the next round.
          ++my.stats.horizon_stalls;
        }
      } catch (...) {
        fail(me);
      }
      sync.arrive_and_wait();
    }
  }

  /// Worker 0, between the reduce and release barriers: hand every shard
  /// its horizon for this round's execute phase.
  void assign_horizons(TimePoint lbts) {
    if (!batched_horizons_) {
      const TimePoint horizon = lbts + lookahead_;
      for (const auto& s : shards_) s->horizon = horizon;
      return;
    }
    // Smallest and second-smallest contribution, so min over j != i is
    // O(1) per shard: m2 when i holds the minimum, m1 otherwise.
    TimePoint m1 = kNever, m2 = kNever;
    std::size_t argmin = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const TimePoint m = shards_[i]->local_min;
      if (m < m1) {
        m2 = m1;
        m1 = m;
        argmin = i;
      } else if (m < m2) {
        m2 = m;
      }
    }
    const TimePoint chain_bound = lbts + lookahead_ + lookahead_;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const TimePoint min_others = i == argmin ? m2 : m1;
      // kNever marks "every other shard idle": only the relayed-chain
      // bound applies, and kNever + lookahead must not be formed (the
      // sentinel is int64 max; the sum would overflow).
      const TimePoint direct_bound =
          min_others == kNever ? kNever : min_others + lookahead_;
      shards_[i]->horizon = std::min(direct_bound, chain_bound);
    }
  }

  /// Records the shard's failure and trips the abort flag.  The worker
  /// keeps participating in barriers so no peer deadlocks; worker 0 folds
  /// the flag into `done` at the next reduce.
  void fail(std::size_t me) {
    if (!errors_[me]) errors_[me] = std::current_exception();
    abort_.store(true, std::memory_order_relaxed);
  }

  Duration lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [from * N + to]
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> abort_{false};
  bool batched_horizons_ = false;
  // Written by worker 0 between barriers; read by all after — race-free.
  bool done_ = false;
  std::uint64_t lbts_rounds_ = 0;
};

}  // namespace nicmcast::sim

// Deterministic pending-event set for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes
// whole-cluster simulations reproducible run to run: the ordering key is the
// pair (time, sequence number).  That tie-break is load-bearing — every
// BENCH_*.json trajectory and golden determinism test pins the event order
// it produces — so the storage scheme below may change, the key never.
//
// Storage is allocation-free in steady state:
//   - callbacks are InlineFunction (inline capture storage, heap fallback),
//   - they live in a pooled slot vector recycled through a free list,
//   - pending (when, seq, slot) items sit in a two-level hierarchical
//     timing wheel (sim/timing_wheel.hpp): O(1) schedule, amortized-O(1)
//     pop on the hot tick path, with far-future timers parked in a coarse
//     wheel / overflow heap until the cursor approaches.
// Cancellation is eager at the slot level: the callback (and everything its
// capture owns) is destroyed immediately and the slot returns to the free
// list; only the small wheel item stays behind, skipped on pop when its
// sequence number no longer matches the slot's.  This replaces the old
// grow-forever `cancelled_` hash set and its O(live) memory.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"
#include "sim/timing_wheel.hpp"

namespace nicmcast::sim {

/// Opaque handle used to cancel a scheduled event.  `seq` is the globally
/// unique schedule order; `slot` is the pool index it was stored in, kept
/// so cancel() is O(1) without any lookup structure.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

class EventQueue {
 public:
  /// 88 inline bytes covers the NIC/net hot-path captures (a packet header
  /// plus a Buffer view plus a couple of handles); bigger captures spill to
  /// the heap and show up in Stats::heap_actions.
  using Action = InlineFunction<void(), 88>;

  /// Allocation/throughput counters, exposed per run for the perf
  /// trajectory (BENCH_simperf.json) and regression benches.
  struct Stats {
    std::uint64_t scheduled = 0;     // total schedule() calls
    std::uint64_t executed = 0;      // actions actually fired
    std::uint64_t cancelled = 0;     // successful cancel() calls
    std::uint64_t heap_actions = 0;  // actions that spilled to heap storage
    std::uint64_t pool_slots = 0;    // high-water pooled slot count
    // Timing-wheel behaviour (see sim/timing_wheel.hpp):
    std::uint64_t wheel_occupancy_peak = 0;  // high-water live pending events
    std::uint64_t wheel_cascades = 0;        // coarse buckets cascaded to fine
    std::uint64_t overflow_scheduled = 0;    // schedules beyond coarse horizon
    std::uint64_t overflow_promotions = 0;   // overflow items promoted inward
  };

  /// Schedules `action` at absolute time `when`.  Returns an id usable with
  /// cancel().
  EventId schedule(TimePoint when, Action action) {
    const std::uint64_t seq = next_seq_++;
    std::uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      stats_.pool_slots = slots_.size();
    }
    Slot& s = slots_[slot];
    s.seq = seq;
    s.armed = true;
    if (action.uses_heap()) ++stats_.heap_actions;
    s.action = std::move(action);
    wheel_.push(WheelItem{when, seq, slot});
    ++live_;
    if (live_ > stats_.wheel_occupancy_peak) stats_.wheel_occupancy_peak = live_;
    ++stats_.scheduled;
    return EventId{seq, slot};
  }

  /// Cancels a previously scheduled event: the action is destroyed now and
  /// its slot recycled.  A no-op returning false for ids that already
  /// fired, were already cancelled, or whose slot has been reused — firing
  /// disarms the slot, so a stale id can never match.
  bool cancel(EventId id) {
    if (id.slot >= slots_.size()) return false;
    Slot& s = slots_[id.slot];
    if (!s.armed || s.seq != id.seq) return false;
    release(id.slot);
    --live_;
    ++stats_.cancelled;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  [[nodiscard]] const Stats& stats() const {
    stats_.wheel_cascades = wheel_.cascades();
    stats_.overflow_scheduled = wheel_.overflow_scheduled();
    stats_.overflow_promotions = wheel_.overflow_promotions();
    return stats_;
  }

  /// FNV-1a-style fold of the executed (time, seq) order.  Two runs that
  /// popped the same events at the same times in the same order have equal
  /// hashes — the determinism golden tests pin this value for fixed seeds.
  [[nodiscard]] std::uint64_t order_hash() const { return order_hash_; }

  /// Earliest pending (non-cancelled) event time.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() {
    skip_stale();
    return wheel_.top().when;
  }

  /// Pops and returns the earliest pending event.  Precondition: !empty().
  std::pair<TimePoint, Action> pop() {
    skip_stale();
    const WheelItem top = wheel_.top();
    wheel_.pop_top();
    Action action = std::move(slots_[top.slot].action);
    release(top.slot);
    --live_;
    ++stats_.executed;
    fold_order(top.when, top.seq);
    return {top.when, std::move(action)};
  }

  // ---- Batched same-tick execution ----------------------------------------
  //
  // The batched dispatch path extracts every item sharing the earliest
  // pending timestamp in one call, then takes them one by one at execution
  // time.  Slots stay armed across the extraction, so a cancel() issued by
  // an earlier batch member against a later one is honoured exactly as the
  // unbatched pop path would have honoured it (the later take() sees a
  // disarmed or re-armed slot and skips).  Executed counts and the order
  // hash fold at take() time, in pop order — bit-identical to pop().
  //
  // Between pop_run() and the last take()/requeue(), pop() and next_time()
  // must not be called: the extracted items are out of the wheel.

  /// Batched-dispatch entry point.  When the earliest pending event is
  /// alone at its timestamp (the common case), this is pop(): `when` and
  /// `action` are set, `out` is left empty, and 1 is returned.  Otherwise
  /// the whole same-timestamp run is extracted into `out` (seq-ascending;
  /// stale members inside the run are extracted too and fall out at
  /// take()) and its length returned.  Precondition: !empty().
  std::size_t pop_tick(std::vector<WheelItem>& out, TimePoint& when,
                       Action& action) {
    out.clear();
    skip_stale();
    WheelItem single;
    const std::size_t n = wheel_.pop_top_or_run(single, out);
    if (out.empty()) {
      when = single.when;
      action = std::move(slots_[single.slot].action);
      release(single.slot);
      --live_;
      ++stats_.executed;
      fold_order(single.when, single.seq);
    } else {
      when = out.front().when;
    }
    return n;
  }

  /// Moves the action of an extracted item into `action` and accounts the
  /// execution.  Returns false (leaving `action` untouched) for items
  /// cancelled before or during the batch.
  bool take(const WheelItem& item, Action& action) {
    Slot& s = slots_[item.slot];
    if (!s.armed || s.seq != item.seq) return false;
    action = std::move(s.action);
    release(item.slot);
    --live_;
    ++stats_.executed;
    fold_order(item.when, item.seq);
    return true;
  }

  /// Returns an extracted-but-not-taken item to the wheel (exception
  /// unwinding through a batch).  The slot is still armed; only the wheel
  /// position is restored.
  void requeue(const WheelItem& item) { wheel_.push(item); }

 private:
  static constexpr std::uint32_t kNilSlot =
      std::numeric_limits<std::uint32_t>::max();

  struct Slot {
    Action action;
    std::uint64_t seq = 0;
    std::uint32_t next_free = kNilSlot;
    bool armed = false;
  };

  /// Destroys the slot's action and pushes the slot onto the free list.
  /// Cancelled events leave their wheel item behind; skip_stale() drops it
  /// later because the slot is disarmed (or re-armed under a newer seq).
  void release(std::uint32_t index) {
    Slot& s = slots_[index];
    s.action = nullptr;
    s.armed = false;
    s.next_free = free_head_;
    free_head_ = index;
  }

  /// Discards lazily-cancelled items from the front of the wheel.  Only
  /// called with at least one live event pending, so it terminates with the
  /// wheel's top being live.
  void skip_stale() {
    for (;;) {
      const WheelItem& top = wheel_.top();
      const Slot& s = slots_[top.slot];
      if (s.armed && s.seq == top.seq) return;
      wheel_.pop_top();
    }
  }

  void fold_order(TimePoint when, std::uint64_t seq) {
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    order_hash_ =
        (order_hash_ ^ static_cast<std::uint64_t>(when.nanoseconds())) * kPrime;
    order_hash_ = (order_hash_ ^ seq) * kPrime;
  }

  TimingWheel wheel_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  mutable Stats stats_;  // wheel counters refreshed on read in stats()
  std::uint64_t order_hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace nicmcast::sim

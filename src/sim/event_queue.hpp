// Deterministic pending-event set for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (FIFO), which makes
// whole-cluster simulations reproducible run to run: the heap key is the
// pair (time, sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace nicmcast::sim {

/// Opaque handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`.  Returns an id usable with
  /// cancel().
  EventId schedule(TimePoint when, Action action) {
    const EventId id{next_seq_++};
    heap_.push(Entry{when, id.seq, std::move(action)});
    ++live_;
    return id;
  }

  /// Cancels a previously scheduled event.  Cancellation is lazy: the entry
  /// stays in the heap but its action is skipped when popped.  Returns true
  /// if the event had not fired or been cancelled yet.
  bool cancel(EventId id) {
    return cancelled_.insert(id.seq).second && live_-- > 0;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest pending (non-cancelled) event time.  Precondition: !empty().
  [[nodiscard]] TimePoint next_time() {
    skip_cancelled();
    return heap_.top().when;
  }

  /// Pops and returns the earliest pending event.  Precondition: !empty().
  std::pair<TimePoint, Action> pop() {
    skip_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    return {top.when, std::move(top.action)};
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    Action action;
    // std::priority_queue is a max-heap; invert so earliest (time, seq) wins.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry> heap_;
  // Set of cancelled sequence numbers not yet popped.
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace nicmcast::sim

// Allocation-stable FIFO window.
//
// A power-of-two ring buffer with deque surface (push_back / pop_front /
// front / back / bidirectional iteration).  Unlike std::deque — which
// allocates a chunk on first insertion and returns it to the heap when the
// window drains — a RingDeque keeps its capacity across drain/refill
// cycles, so a Go-back-N send window that oscillates between empty and a
// few in-flight records settles into zero steady-state allocation.  Used
// for the NIC's per-connection and per-group unacked-record windows.
#pragma once

#include <cstddef>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

namespace nicmcast::sim {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(RingDeque&& other) noexcept
      : slots_(std::exchange(other.slots_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}
  RingDeque& operator=(RingDeque&& other) noexcept {
    if (this != &other) {
      destroy_storage();
      slots_ = std::exchange(other.slots_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;
  ~RingDeque() { destroy_storage(); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Slots currently reserved (never shrinks — that is the point).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    ::new (slot(head_ + size_)) T(std::move(value));
    ++size_;
  }

  void pop_front() {
    slot(head_)->~T();
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  [[nodiscard]] T& front() { return *slot(head_); }
  [[nodiscard]] const T& front() const { return *slot(head_); }
  [[nodiscard]] T& back() { return *slot(head_ + size_ - 1); }
  [[nodiscard]] const T& back() const { return *slot(head_ + size_ - 1); }

  [[nodiscard]] T& operator[](std::size_t i) { return *slot(head_ + i); }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return *slot(head_ + i);
  }

  /// Destroys the elements; capacity is retained.
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) slot(head_ + i)->~T();
    head_ = 0;
    size_ = 0;
  }

  template <bool Const>
  class Iterator {
   public:
    using Ring = std::conditional_t<Const, const RingDeque, RingDeque>;
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using reference = std::conditional_t<Const, const T&, T&>;
    using pointer = std::conditional_t<Const, const T*, T*>;

    Iterator() = default;
    Iterator(Ring* ring, std::size_t index) : ring_(ring), index_(index) {}
    /// Iterator -> const_iterator conversion.
    template <bool WasConst, typename = std::enable_if_t<Const && !WasConst>>
    Iterator(const Iterator<WasConst>& other)
        : ring_(other.ring_), index_(other.index_) {}

    reference operator*() const { return (*ring_)[index_]; }
    pointer operator->() const { return &(*ring_)[index_]; }
    Iterator& operator++() { ++index_; return *this; }
    Iterator operator++(int) { Iterator t = *this; ++index_; return t; }
    Iterator& operator--() { --index_; return *this; }
    Iterator operator--(int) { Iterator t = *this; --index_; return t; }
    Iterator& operator+=(difference_type n) { index_ += n; return *this; }
    Iterator& operator-=(difference_type n) { index_ -= n; return *this; }
    friend Iterator operator+(Iterator it, difference_type n) {
      return it += n;
    }
    friend Iterator operator-(Iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const Iterator& a, const Iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    reference operator[](difference_type n) const {
      return (*ring_)[index_ + n];
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.index_ == b.index_;
    }
    friend auto operator<=>(const Iterator& a, const Iterator& b) {
      return a.index_ <=> b.index_;
    }

   private:
    friend class RingDeque;
    template <bool>
    friend class Iterator;
    Ring* ring_ = nullptr;
    std::size_t index_ = 0;  // logical offset from front
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, size_}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }
  [[nodiscard]] reverse_iterator rbegin() { return reverse_iterator{end()}; }
  [[nodiscard]] reverse_iterator rend() { return reverse_iterator{begin()}; }
  [[nodiscard]] const_reverse_iterator rbegin() const {
    return const_reverse_iterator{end()};
  }
  [[nodiscard]] const_reverse_iterator rend() const {
    return const_reverse_iterator{begin()};
  }

 private:
  [[nodiscard]] static T* allocate(std::size_t count) {
    return static_cast<T*>(
        operator new[](count * sizeof(T), std::align_val_t{alignof(T)}));
  }
  static void deallocate(T* p) {
    operator delete[](p, std::align_val_t{alignof(T)});
  }

  [[nodiscard]] T* slot(std::size_t logical) const {
    return slots_ + (logical & (capacity_ - 1));
  }

  void destroy_storage() {
    clear();
    deallocate(slots_);
    slots_ = nullptr;
    capacity_ = 0;
  }

  void grow() {
    const std::size_t next = capacity_ == 0 ? 4 : capacity_ * 2;
    T* fresh = allocate(next);
    // T is a record struct with noexcept moves; relocate then free the old
    // ring.  (No exception path: a throwing move would be a bug upstream.)
    for (std::size_t i = 0; i < size_; ++i) {
      T* src = slot(head_ + i);
      ::new (fresh + i) T(std::move(*src));
      src->~T();
    }
    deallocate(slots_);
    slots_ = fresh;
    capacity_ = next;
    head_ = 0;
  }

  T* slots_ = nullptr;        // raw storage, manual lifetimes
  std::size_t capacity_ = 0;  // always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nicmcast::sim

// Deterministic open-addressing hash map for the NIC/GM hot paths.
//
// std::unordered_map served the connection, group and pending-op tables
// but charged the packet path a heap node plus pointer chase per entry,
// rehash churn as clusters grow, and an iteration order that follows the
// implementation's hash seed (the repo's unordered-iteration lint exists
// because of that).  FlatMap replaces it with three flat arrays:
//
//   - a linear-probe bucket index storing (key, slot) inline — lookups
//     touch consecutive cache lines, and backward-shift deletion keeps
//     probe chains short with no tombstone buildup;
//   - a chunked slot pool of Entry{first, second} values — chunks are
//     never moved or freed, so entry references and iterators stay
//     stable across insert/erase/growth, matching the node-based map
//     this replaces (NIC callbacks hold GroupState& across scheduling);
//   - an intrusive doubly-linked insertion-order list threaded through
//     the slots — iteration order is a pure function of the operation
//     sequence, never of the hash function or its seed.
//
// The API subset mirrors std::unordered_map (find/end/at/contains/
// operator[]/emplace/erase/size/iteration with it->first, it->second)
// so call sites swap types without edits.  Erased values are reset to a
// default-constructed state immediately (resources release eagerly, as
// with erase on a node map) and their slots recycle through a free list.
//
// Constraints: Key is an integral type where every bit pattern is a
// valid key (emptiness is tracked by the slot field, not a sentinel
// key); T is default-constructible and move-assignable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace nicmcast::sim {

template <typename Key, typename T>
class FlatMap {
  static_assert(std::is_integral_v<Key>,
                "FlatMap keys are packed integers (conn keys, handles, ids)");

 public:
  using key_type = Key;
  using mapped_type = T;

  /// Stored entry, named like std::pair so unordered_map call sites
  /// (it->first / it->second, structured bindings) compile unchanged.
  struct Entry {
    Key first{};
    T second{};
  };

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};
  // 8 entries per chunk: small enough that a NIC whose tables hold a
  // handful of peers (the common soak/short-run shape) touches one small
  // allocation per map, not a 64-entry arena it then default-destroys.
  static constexpr std::size_t kChunkShift = 3;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  struct Bucket {
    Key key{};
    std::uint32_t slot = kNil;  // kNil marks the bucket empty
  };
  // Doubly-linked insertion-order list; `next` doubles as the free chain
  // for recycled slots (a freed slot is never on both lists).
  struct Link {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  template <typename EntryT, typename MapT>
  class Iter {
   public:
    Iter() = default;
    EntryT& operator*() const { return map_->entry_at(slot_); }
    EntryT* operator->() const { return &map_->entry_at(slot_); }
    Iter& operator++() {
      slot_ = map_->links_[slot_].next;
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.slot_ != b.slot_;
    }

   private:
    friend class FlatMap;
    Iter(MapT* map, std::uint32_t slot) : map_(map), slot_(slot) {}
    MapT* map_ = nullptr;
    std::uint32_t slot_ = kNil;
  };

 public:
  using iterator = Iter<Entry, FlatMap>;
  using const_iterator = Iter<const Entry, const FlatMap>;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Index rehashes triggered by insertion since construction — the churn
  /// reserve() exists to avoid.  reserve() itself never counts.
  [[nodiscard]] std::uint64_t growths() const { return growths_; }

  /// Mirrors every future growth into `counter` (e.g. a NicStats field) so
  /// owners expose the churn without polling.  nullptr detaches.
  void bind_growth_counter(std::uint64_t* counter) {
    growth_counter_ = counter;
  }

  /// Pre-sizes the index for `n` entries so the insert path stays
  /// rehash-free up to that population.  Entry chunks still allocate on
  /// demand: a map that never reaches `n` entries (a NIC on a mostly-idle
  /// node) should not pay for — or default-destroy — slots it never used.
  void reserve(std::size_t n) {
    if (n == 0) return;
    std::size_t cap = buckets_.empty() ? kMinBuckets : buckets_.size();
    while (cap * 3 < n * 4) cap *= 2;  // keep load factor under 3/4
    if (cap != buckets_.size()) rehash(cap);
    links_.reserve(n);
  }

  // ---- Iteration (insertion order) ----

  iterator begin() { return {this, head_}; }
  iterator end() { return {this, kNil}; }
  const_iterator begin() const { return {this, head_}; }
  const_iterator end() const { return {this, kNil}; }

  // ---- Lookup ----

  iterator find(Key key) { return {this, slot_of(key)}; }
  const_iterator find(Key key) const { return {this, slot_of(key)}; }
  [[nodiscard]] bool contains(Key key) const { return slot_of(key) != kNil; }
  [[nodiscard]] std::size_t count(Key key) const { return contains(key); }

  T& at(Key key) {
    const std::uint32_t slot = slot_of(key);
    if (slot == kNil) throw std::out_of_range("FlatMap::at: missing key");
    return entry_at(slot).second;
  }
  const T& at(Key key) const {
    const std::uint32_t slot = slot_of(key);
    if (slot == kNil) throw std::out_of_range("FlatMap::at: missing key");
    return entry_at(slot).second;
  }

  // ---- Insertion ----

  T& operator[](Key key) { return entry_at(insert_slot(key).first).second; }

  /// Inserts value-constructed-from-args under `key`; an existing entry is
  /// left untouched (same as std::unordered_map).
  template <typename... Args>
  std::pair<iterator, bool> emplace(Key key, Args&&... args) {
    const auto [slot, inserted] = insert_slot(key);
    if (inserted) entry_at(slot).second = T(std::forward<Args>(args)...);
    return {iterator{this, slot}, inserted};
  }

  // ---- Erasure ----

  std::size_t erase(Key key) {
    const std::size_t bucket = bucket_of(key);
    if (bucket == kNoBucket) return 0;
    erase_bucket(bucket);
    return 1;
  }

  /// Erases the pointed-to entry and returns its insertion-order successor
  /// (same contract as std::unordered_map::erase for loop use).
  iterator erase(iterator it) {
    const std::uint32_t next = links_[it.slot_].next;
    erase_bucket(bucket_of(it->first));
    return {this, next};
  }

  void clear() {
    while (head_ != kNil) erase_bucket(bucket_of(entry_at(head_).first));
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  /// splitmix64 finalizer: fixed, seedless, and strong enough that the
  /// packed (port, peer, peer_port) keys spread over the low index bits.
  static std::uint64_t mix(Key key) {
    std::uint64_t x = static_cast<std::uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  Entry& entry_at(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  const Entry& entry_at(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  std::size_t bucket_of(Key key) const {
    if (buckets_.empty()) return kNoBucket;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask_;
    for (;;) {
      const Bucket& b = buckets_[i];
      if (b.slot == kNil) return kNoBucket;
      if (b.key == key) return i;
      i = (i + 1) & mask_;
    }
  }

  std::uint32_t slot_of(Key key) const {
    const std::size_t bucket = bucket_of(key);
    return bucket == kNoBucket ? kNil : buckets_[bucket].slot;
  }

  std::pair<std::uint32_t, bool> insert_slot(Key key) {
    if (buckets_.empty()) rehash(kMinBuckets);
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask_;
    for (;;) {
      const Bucket& b = buckets_[i];
      if (b.slot == kNil) break;
      if (b.key == key) return {b.slot, false};
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 4 > buckets_.size() * 3) {
      rehash(buckets_.size() * 2);
      ++growths_;
      if (growth_counter_ != nullptr) ++*growth_counter_;
      i = static_cast<std::size_t>(mix(key)) & mask_;
      while (buckets_[i].slot != kNil) i = (i + 1) & mask_;
    }
    const std::uint32_t slot = alloc_slot();
    entry_at(slot).first = key;
    buckets_[i] = Bucket{key, slot};
    link_tail(slot);
    ++size_;
    return {slot, true};
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNil) {
      const std::uint32_t slot = free_head_;
      free_head_ = links_[slot].next;
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(links_.size());
    links_.emplace_back();
    if ((static_cast<std::size_t>(slot) >> kChunkShift) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Entry[]>(kChunkSize));
    }
    return slot;
  }

  void link_tail(std::uint32_t slot) {
    links_[slot] = Link{tail_, kNil};
    if (tail_ != kNil) {
      links_[tail_].next = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
  }

  void unlink(std::uint32_t slot) {
    const Link l = links_[slot];
    if (l.prev != kNil) {
      links_[l.prev].next = l.next;
    } else {
      head_ = l.next;
    }
    if (l.next != kNil) {
      links_[l.next].prev = l.prev;
    } else {
      tail_ = l.prev;
    }
  }

  void erase_bucket(std::size_t bucket) {
    // Checked here, not at class scope: values nested in a still-open class
    // (Nic's GroupState) only become default-constructible once their
    // enclosing class closes, and method bodies instantiate lazily.
    static_assert(std::is_default_constructible_v<T> &&
                      std::is_move_assignable_v<T>,
                  "FlatMap values live in a recycled pool");
    const std::uint32_t slot = buckets_[bucket].slot;
    unlink(slot);
    Entry& e = entry_at(slot);
    e.first = Key{};
    e.second = T{};  // release the value's resources now, like node erase
    links_[slot].next = free_head_;
    free_head_ = slot;
    --size_;
    backward_shift(bucket);
  }

  /// Refills the hole at `hole` by shifting later probe-chain members back
  /// towards their home buckets — the classic tombstone-free deletion for
  /// linear probing.  An element at k may fill the hole at j iff its probe
  /// path from home(k) reaches j no later than k.
  void backward_shift(std::size_t hole) {
    std::size_t j = hole;  // current hole position
    std::size_t k = hole;  // scan cursor over the rest of the probe chain
    for (;;) {
      k = (k + 1) & mask_;
      const Bucket& bk = buckets_[k];
      if (bk.slot == kNil) break;
      const std::size_t home = static_cast<std::size_t>(mix(bk.key)) & mask_;
      if (((k - home) & mask_) >= ((k - j) & mask_)) {
        buckets_[j] = bk;
        j = k;  // the hole moved to k; keep scanning past it
      }
    }
    buckets_[j] = Bucket{};
  }

  /// Rebuilds the index at `new_cap` buckets (a power of two).  Entries are
  /// reinserted in insertion order, so the rebuilt probe layout — like
  /// everything else observable — is a pure function of the op sequence.
  void rehash(std::size_t new_cap) {
    buckets_.assign(new_cap, Bucket{});
    mask_ = new_cap - 1;
    for (std::uint32_t s = head_; s != kNil; s = links_[s].next) {
      const Key key = entry_at(s).first;
      std::size_t i = static_cast<std::size_t>(mix(key)) & mask_;
      while (buckets_[i].slot != kNil) i = (i + 1) & mask_;
      buckets_[i] = Bucket{key, s};
    }
  }

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  std::vector<std::unique_ptr<Entry[]>> chunks_;
  std::vector<Link> links_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t growths_ = 0;
  std::uint64_t* growth_counter_ = nullptr;
};

}  // namespace nicmcast::sim

// Statistics accumulators used by the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace nicmcast::sim {

/// Streaming mean / variance / extrema (Welford's algorithm); O(1) memory.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Folds another accumulator in (Chan's parallel Welford update), so
  /// per-thread / per-scenario stats can be combined without re-streaming
  /// the samples.  Exact to floating-point roundoff.
  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto n = static_cast<double>(n_);
    const auto m = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * m / (n + m);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample collector with percentiles; keeps all samples.
class Series {
 public:
  void add(double x) {
    samples_.push_back(x);
    stats_.add(x);
    sorted_stale_ = true;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] double stddev() const { return stats_.stddev(); }

  /// Linear-interpolated percentile, p in [0, 100].  The sorted copy is
  /// cached, so repeated percentile/median calls sort once per batch of
  /// adds instead of once per call.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) {
      throw std::logic_error("percentile of empty series");
    }
    if (sorted_stale_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_stale_ = false;
    }
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
  }

  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  OnlineStats stats_;
  // Lazily maintained sorted view for percentile(); invalidated by add().
  mutable std::vector<double> sorted_;
  mutable bool sorted_stale_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.  Used by reliability benches to show retransmission counts.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    if (buckets == 0 || !(lo < hi)) {
      throw std::invalid_argument("Histogram: bad range");
    }
  }

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(
        t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nicmcast::sim

// Two-level hierarchical timing wheel for the pending-event set.
//
// The event queue's ordering key is the pair (time, sequence number) — the
// determinism contract every BENCH_*.json trajectory and golden test pins.
// A binary heap pays O(log n) per schedule/pop against that key; the wheel
// pays O(1) on the hot tick path by bucketing events by time and only
// heap-ordering the handful that share the slot currently being drained:
//
//   - fine wheel:   1024 slots of 64 ns — link/DMA/processing events land
//                   here (the engine's cost model is all sub-microsecond to
//                   a-few-microsecond steps), giving a ~65 us horizon;
//   - coarse wheel: 1024 slots of one fine-span (~65 us) each — retransmit
//                   and idle-close timers (milliseconds) land here and are
//                   cascaded into the fine wheel when the cursor crosses
//                   their coarse slot, a ~67 ms horizon;
//   - overflow heap: a (when, seq) min-heap for anything beyond the coarse
//                   horizon, promoted into the wheels as the cursor
//                   approaches (promotions are counted — see stats).
//
// Tie-break preservation: the slot width never splits the ordering.  Every
// bucket is drained into `ready_`, a vector kept sorted descending by
// (when, seq), before anything is popped from it, and `ready_` only ever
// holds items whose fine index is <= the cursor while all wheel/overflow
// items are strictly beyond it — so the back of `ready_` is always the
// global (when, seq) minimum.  Pop order is therefore bit-identical to the
// old binary heap's, while a pop is a comparison-free pop_back() and a
// same-timestamp run sits contiguous at the tail in reverse-seq order.
//
// The cursor only moves over slots verified empty (or drained), and items
// scheduled at-or-behind the cursor (the raw queue allows scheduling into
// the past; Simulator forbids it but unit tests exercise it) are pushed
// straight into `ready_`, where they compete correctly.  That makes top()
// safe to call from next_time(): advancing over empty slots discards
// nothing and never reorders anything.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace nicmcast::sim {

/// A pending-event reference: the ordering key plus the owner's pool-slot
/// index.  The wheel orders strictly by (when, seq) and never reads `slot`.
struct WheelItem {
  TimePoint when;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
};

class TimingWheel {
 public:
  static constexpr unsigned kFineShift = 6;      // 64 ns per fine slot
  static constexpr unsigned kFineSlotBits = 10;  // 1024 slots, ~65.5 us span
  static constexpr std::size_t kFineSlots = std::size_t{1} << kFineSlotBits;
  static constexpr std::size_t kCoarseSlots = 1024;  // ~67 ms horizon

  TimingWheel() : fine_heads_(kFineSlots, kNil), coarse_heads_(kCoarseSlots, kNil) {}

  void push(const WheelItem& item) {
    place(item);
    ++size_;
  }

  /// Earliest item by (when, seq).  Precondition: size() > 0.  Advances the
  /// cursor over verified-empty slots (cascading/promoting on the way) but
  /// never discards or reorders an item, so it is peek-safe.
  [[nodiscard]] const WheelItem& top() {
    ensure_ready();
    return ready_.back();
  }

  /// Removes the item top() returned.  Precondition: size() > 0.
  void pop_top() {
    ensure_ready();
    ready_.pop_back();
    --size_;
  }

  /// Pops the earliest item into `single` and returns 1 when it is alone
  /// at its timestamp; otherwise extracts the whole same-timestamp run
  /// into `out` (appended in ascending seq order) and returns its length.
  /// The aloneness test is O(1) and exact: `ready_` is sorted, so an item
  /// sharing the minimum's timestamp would sit directly before it.
  /// Precondition: size() > 0.
  std::size_t pop_top_or_run(WheelItem& single, std::vector<WheelItem>& out) {
    ensure_ready();
    const std::size_t n = ready_.size();
    if (n < 2 || ready_[n - 2].when != ready_[n - 1].when) {
      single = ready_.back();
      ready_.pop_back();
      --size_;
      return 1;
    }
    return pop_run(out);
  }

  /// Pops the maximal run of items sharing top()'s timestamp, appending
  /// them to `out` in ascending seq order — exactly the order N pop_top()
  /// calls would have produced.  Precondition: size() > 0.
  ///
  /// Once ensure_ready() has the earliest item in `ready_`, every stored
  /// item with that timestamp is in `ready_` too: equal timestamps share a
  /// fine slot, a drained slot empties completely, and later same-tick
  /// pushes land at-or-behind the cursor and join `ready_` directly.  So
  /// one extraction really is the whole tick — the descending-sorted tail,
  /// copied out back-to-front.
  std::size_t pop_run(std::vector<WheelItem>& out) {
    ensure_ready();
    const TimePoint when = ready_.back().when;
    std::size_t b = ready_.size();
    while (b > 0 && ready_[b - 1].when == when) --b;
    const std::size_t run = ready_.size() - b;
    out.reserve(out.size() + run);
    for (std::size_t i = ready_.size(); i-- > b;) {
      out.push_back(ready_[i]);
    }
    ready_.resize(b);
    size_ -= run;
    return run;
  }

  /// Items stored, including lazily-cancelled ones the owner will skip.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Coarse buckets redistributed into the fine wheel.
  [[nodiscard]] std::uint64_t cascades() const { return cascades_; }
  /// Schedules that landed beyond the coarse horizon.
  [[nodiscard]] std::uint64_t overflow_scheduled() const {
    return overflow_scheduled_;
  }
  /// Items promoted from the overflow heap into the wheels.
  [[nodiscard]] std::uint64_t overflow_promotions() const {
    return overflow_promotions_;
  }

 private:
  /// "a fires after b": the greater-than comparator that makes
  /// std::push_heap/pop_heap and std::priority_queue behave as min-heaps.
  struct Later {
    bool operator()(const WheelItem& a, const WheelItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Buckets are intrusive singly-linked lists threaded through one pooled
  // node arena: pushing into a slot never allocates after warm-up (freed
  // nodes recycle through a free list), and a cascade re-links nodes from
  // the coarse list into fine lists without copying or touching the heap
  // allocator.  In-bucket order is irrelevant — every drained bucket goes
  // through the (when, seq) ready_ heap before anything pops — so LIFO
  // linking is fine.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    WheelItem item;
    std::uint32_t next = kNil;
  };

  static std::uint64_t fine_index(TimePoint when) {
    const std::int64_t ns = when.nanoseconds();
    return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns) >> kFineShift;
  }
  static std::uint64_t coarse_index(std::uint64_t fine_idx) {
    return fine_idx >> kFineSlotBits;
  }

  /// Sorted insert (descending by Later): rare relative to pops — only
  /// items scheduled at-or-behind the cursor and boundary-cascade items
  /// land here one at a time; bucket drains go through drain_fine_slot's
  /// bulk append + sort instead.
  void push_ready(const WheelItem& item) {
    ready_.insert(std::upper_bound(ready_.begin(), ready_.end(), item, Later{}),
                  item);
  }

  [[nodiscard]] std::uint32_t alloc_node(const WheelItem& item) {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      free_head_ = pool_[idx].next;
      pool_[idx].item = item;
      return idx;
    }
    pool_.push_back(Node{item, kNil});
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void free_node(std::uint32_t idx) {
    pool_[idx].next = free_head_;
    free_head_ = idx;
  }

  void link_fine(std::uint32_t idx, std::uint64_t f) {
    const std::uint64_t slot = f & (kFineSlots - 1);
    pool_[idx].next = fine_heads_[slot];
    fine_heads_[slot] = idx;
    fine_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++fine_count_;
  }

  /// Files an item by distance from the cursor.  At-or-behind the cursor it
  /// joins `ready_` directly; a coarse slot always maps onto the fine wheel
  /// exactly (one coarse slot == one fine span), so cascaded and promoted
  /// items re-place cleanly and never fall back into the overflow heap.
  void place(const WheelItem& item) {
    const std::uint64_t f = fine_index(item.when);
    if (f <= cursor_) {
      push_ready(item);
      return;
    }
    if (f - cursor_ < kFineSlots) {
      link_fine(alloc_node(item), f);
      return;
    }
    const std::uint64_t c = coarse_index(f);
    if (c - coarse_index(cursor_) < kCoarseSlots) {
      const std::uint64_t slot = c & (kCoarseSlots - 1);
      const std::uint32_t idx = alloc_node(item);
      pool_[idx].next = coarse_heads_[slot];
      coarse_heads_[slot] = idx;
      coarse_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++coarse_count_;
      return;
    }
    overflow_.push(item);
    ++overflow_scheduled_;
  }

  /// Drains the fine bucket at absolute index `f` (== cursor_) into ready_
  /// and clears its occupancy bit.  The whole bucket is appended first and
  /// sorted once — O(k log k) instead of k sorted inserts at O(k) moves
  /// each — then merged with whatever ready_ already held (cross_boundary
  /// can cascade items into ready_ before draining the boundary slot).
  void drain_fine_slot(std::uint64_t f) {
    const std::uint64_t slot = f & (kFineSlots - 1);
    std::uint32_t idx = fine_heads_[slot];
    fine_heads_[slot] = kNil;
    fine_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    const std::size_t old = ready_.size();
    // LIFO bucket + monotonically increasing seq means a slot that only
    // ever saw in-order pushes walks out already descending — the common
    // case by far — so sortedness is tracked during the append and the
    // sort skipped when it held.  Cascades and re-pushes break it; those
    // buckets pay the O(k log k) sort.
    bool sorted = true;
    while (idx != kNil) {
      const std::uint32_t next = pool_[idx].next;
      const WheelItem& item = pool_[idx].item;
      if (ready_.size() > old && Later{}(item, ready_.back())) sorted = false;
      ready_.push_back(item);
      free_node(idx);
      --fine_count_;
      idx = next;
    }
    const auto mid = ready_.begin() + static_cast<std::ptrdiff_t>(old);
    if (!sorted) std::sort(mid, ready_.end(), Later{});
    if (old != 0) {
      std::inplace_merge(ready_.begin(), mid, ready_.end(), Later{});
    }
  }

  /// First occupied fine slot with absolute index in [from, bound), or
  /// `bound` if none.  The window (cursor_, cursor_ + kFineSlots] covers
  /// each masked slot exactly once, so within a bitmap word the masked
  /// index maps back to `candidate + bit offset` unambiguously.
  [[nodiscard]] std::uint64_t next_fine_occupied(std::uint64_t from,
                                                std::uint64_t bound) const {
    for (std::uint64_t f = from; f < bound;) {
      const std::uint64_t slot = f & (kFineSlots - 1);
      const std::uint64_t word = fine_bits_[slot >> 6] >> (slot & 63);
      if (word != 0) {
        const std::uint64_t hit =
            f + static_cast<std::uint64_t>(std::countr_zero(word));
        return hit < bound ? hit : bound;
      }
      f += 64 - (slot & 63);  // jump to the next bitmap word
    }
    return bound;
  }

  /// First occupied coarse slot with absolute index in [from, bound), or
  /// `bound` if none.
  [[nodiscard]] std::uint64_t next_coarse_occupied(std::uint64_t from,
                                                   std::uint64_t bound) const {
    for (std::uint64_t c = from; c < bound;) {
      const std::uint64_t slot = c & (kCoarseSlots - 1);
      const std::uint64_t word = coarse_bits_[slot >> 6] >> (slot & 63);
      if (word != 0) {
        const std::uint64_t hit =
            c + static_cast<std::uint64_t>(std::countr_zero(word));
        return hit < bound ? hit : bound;
      }
      c += 64 - (slot & 63);
    }
    return bound;
  }

  /// Promotes every overflow item that now fits the coarse horizon ending
  /// at `c_now + kCoarseSlots`.  The overflow heap is (when, seq)-ordered,
  /// so eligible items pop in order and each lands in ready/fine/coarse.
  void promote_overflow(std::uint64_t c_now) {
    while (!overflow_.empty() &&
           coarse_index(fine_index(overflow_.top().when)) - c_now <
               kCoarseSlots) {
      const WheelItem item = overflow_.top();
      overflow_.pop();
      place(item);
      ++overflow_promotions_;
    }
  }

  /// Moves the cursor to the next coarse boundary, redistributes that
  /// coarse bucket into the fine wheel, and drains the boundary's own fine
  /// slot (pre-existing fine items plus just-cascaded ones) into ready_.
  void cross_boundary(std::uint64_t boundary) {
    cursor_ = boundary;
    const std::uint64_t cslot = coarse_index(boundary) & (kCoarseSlots - 1);
    std::uint32_t idx = coarse_heads_[cslot];
    if (idx != kNil) {
      ++cascades_;
      coarse_heads_[cslot] = kNil;
      coarse_bits_[cslot >> 6] &= ~(std::uint64_t{1} << (cslot & 63));
      while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        --coarse_count_;
        const std::uint64_t f = fine_index(pool_[idx].item.when);
        if (f <= cursor_) {
          push_ready(pool_[idx].item);
          free_node(idx);
        } else {
          link_fine(idx, f);  // re-link the node: no copy, no allocation
        }
        idx = next;
      }
    }
    promote_overflow(coarse_index(boundary));
    if (fine_heads_[boundary & (kFineSlots - 1)] != kNil) {
      drain_fine_slot(boundary);
    }
  }

  /// Both wheels empty but items pend beyond the horizon: jump the cursor
  /// straight to the earliest overflow item and promote its cluster.
  void jump_to_overflow() {
    cursor_ = std::max(cursor_, fine_index(overflow_.top().when));
    promote_overflow(coarse_index(cursor_));
  }

  /// Makes ready_ non-empty.  Precondition: size() > 0.  The empty test
  /// inlines into every top()/pop caller; the slot-scan loop stays
  /// out of line so it does not bloat those call sites.
  void ensure_ready() {
    if (!ready_.empty()) return;
    fill_ready();
  }

  [[gnu::noinline]] void fill_ready() {
    while (ready_.empty()) {
      if (fine_count_ == 0 && coarse_count_ == 0) {
        jump_to_overflow();
        continue;
      }
      const std::uint64_t boundary = (coarse_index(cursor_) + 1)
                                     << kFineSlotBits;
      if (fine_count_ > 0) {
        const std::uint64_t f = next_fine_occupied(cursor_ + 1, boundary);
        if (f < boundary) {
          cursor_ = f;
          drain_fine_slot(f);
          continue;
        }
        cross_boundary(boundary);
        continue;
      }
      // Fine wheel empty: jump straight to the next occupied coarse slot.
      // A single jump never exceeds the coarse span, so overflow items
      // (whose coarse distance was >= kCoarseSlots at insert) can never end
      // up behind the cursor before promote_overflow() sees them.
      const std::uint64_t c0 = coarse_index(cursor_) + 1;
      const std::uint64_t c = next_coarse_occupied(c0, c0 + kCoarseSlots);
      cross_boundary(c << kFineSlotBits);
    }
  }

  std::vector<std::uint32_t> fine_heads_;    // per-slot list head, kNil empty
  std::vector<std::uint32_t> coarse_heads_;  // per-slot list head, kNil empty
  std::vector<Node> pool_;                   // backing arena for both wheels
  std::uint32_t free_head_ = kNil;           // recycled-node free list
  // Occupancy bitmaps (bit set iff the bucket is non-empty): slot scans are
  // countr_zero word operations instead of per-bucket empty() probes.
  std::array<std::uint64_t, kFineSlots / 64> fine_bits_{};
  std::array<std::uint64_t, kCoarseSlots / 64> coarse_bits_{};
  std::vector<WheelItem> ready_;  // sorted descending by (when, seq)
  std::priority_queue<WheelItem, std::vector<WheelItem>, Later> overflow_;
  std::uint64_t cursor_ = 0;  // fine index of the slot drained into ready_
  std::size_t fine_count_ = 0;
  std::size_t coarse_count_ = 0;
  std::size_t size_ = 0;
  std::uint64_t cascades_ = 0;
  std::uint64_t overflow_scheduled_ = 0;
  std::uint64_t overflow_promotions_ = 0;
};

}  // namespace nicmcast::sim

// Mini-MPI over the GM layer — the MPICH-GM analogue the paper modified.
//
// Protocols, mirroring MPICH-GM 1.2.4..8a:
//  * eager for messages <= 16287 bytes (copied through preposted GM
//    buffers),
//  * rendezvous (RTS/CTS + bulk transfer into an exact-size buffer) above,
//  * broadcast: the traditional host-based binomial algorithm, or the
//    paper's NIC-based multicast with demand-driven group creation — the
//    first broadcast per (communicator, root) builds the optimal tree at
//    the root's host, distributes per-member NIC group-table entries, and
//    every later broadcast is a single NIC multicast (eager sizes only;
//    larger broadcasts fall back to the host-based path, paper §5).
//
// Each rank is a simulated process; all blocking calls are coroutines.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gm/cluster.hpp"
#include "gm/port.hpp"
#include "mcast/postal_tree.hpp"
#include "mcast/tree.hpp"
#include "mpi/comm.hpp"
#include "mpi/envelope.hpp"

namespace nicmcast::mpi {

using gm::Payload;

enum class BcastAlgorithm : std::uint8_t {
  kHostBased,  // binomial tree of eager point-to-point sends
  kNicBased,   // NIC-based multicast over a preposted optimal tree
};

enum class BarrierAlgorithm : std::uint8_t {
  kDissemination,  // classic host-level log-round exchange
  kNicBased,       // NIC-level gather/release over the group tree (ext.)
};

struct MpiConfig {
  /// Largest eager-mode message (paper §6.2: 16287 bytes).
  std::size_t eager_limit = 16287;
  /// Preposted eager receive buffers per process (replenished on use).
  std::size_t eager_buffers = 32;
  BcastAlgorithm bcast_algorithm = BcastAlgorithm::kNicBased;
  BarrierAlgorithm barrier_algorithm = BarrierAlgorithm::kDissemination;
  /// Extension (paper §7): serve >eager_limit broadcasts with the NIC
  /// multicast too — an announce/ready handshake posts exact-size landing
  /// buffers (the RDMA targets) at every member, then the payload streams
  /// down the tree with per-packet NIC forwarding and no host copies.
  /// Off by default: the paper's modified MPICH-GM kept the rendezvous
  /// host path above the eager limit.
  bool rdma_multicast = false;
  /// Extension (paper §7 / "NIC-Based Reduction in Myrinet Clusters"):
  /// fold Allreduce contributions in NIC firmware on the way up the tree
  /// instead of at the hosts.  Beneficial for small vectors (the LANai
  /// combines slowly), exactly as that companion paper found.
  bool nic_reduction = false;
  /// Host memcpy bandwidth for eager-mode copies between the user buffer
  /// and the pre-registered GM bounce buffers.  This is what makes the
  /// MPI-level latency exceed the GM level, and causes the paper's dip at
  /// the 16287-byte eager limit ("the larger cost of copying the data to
  /// their final locations", §6.2).  Rendezvous transfers land directly
  /// (RDMA) and pay no copy.  ~Pentium-III class memory bandwidth.
  double host_copy_mbps = 700.0;
  /// Fixed host cost per MPI call (queue search, envelope handling).
  sim::Duration call_overhead = sim::usec(0.3);
};

struct ProcessStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t bcasts = 0;
  std::uint64_t barriers = 0;
  std::uint64_t groups_created = 0;
  /// Simulated time spent blocked inside MPI_Bcast (the paper's "host CPU
  /// time": with a polling blocking implementation, wall time in the call
  /// is CPU time).
  sim::Duration bcast_cpu_time{0};
  /// Duration of the most recent broadcast call.
  sim::Duration last_bcast_time{0};
};

class World;

/// One MPI rank.  All blocking operations must be called from this rank's
/// simulated process, one at a time (MPI serialises calls per rank).
class Process {
 public:
  Process(World& world, gm::Port& port);
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const;
  [[nodiscard]] const Comm& world_comm() const;
  [[nodiscard]] const ProcessStats& stats() const { return stats_; }
  [[nodiscard]] gm::Port& port() { return port_; }
  [[nodiscard]] sim::Simulator& simulator() { return port_.simulator(); }

  /// Blocking standard-mode send (eager or rendezvous by size).
  sim::Task<void> send(int dest, std::uint16_t tag, Payload data);
  sim::Task<void> send(const Comm& comm, int dest, std::uint16_t tag,
                       Payload data);

  /// Blocking receive matching (source rank, tag).
  sim::Task<Payload> recv(int src, std::uint16_t tag);
  sim::Task<Payload> recv(const Comm& comm, int src, std::uint16_t tag);

  /// Barrier (dissemination or NIC-level per MpiConfig).
  sim::Task<void> barrier();
  sim::Task<void> barrier(const Comm& comm);
  sim::Task<void> barrier(const Comm& comm, BarrierAlgorithm algorithm);

  /// Broadcast.  MPI semantics: every rank passes a buffer of the SAME
  /// size (the protocol choice depends on it); the root's contents are
  /// written into everyone else's buffer.
  sim::Task<void> bcast(Payload& data, int root);
  sim::Task<void> bcast(const Comm& comm, Payload& data, int root);
  /// Broadcast with an explicit algorithm (benchmarks compare both).
  sim::Task<void> bcast(const Comm& comm, Payload& data, int root,
                        BcastAlgorithm algorithm);

  /// Allreduce (sum of int64 vectors) — future-work collective built on
  /// the NIC multicast: reduce up the tree, NIC-broadcast down.
  sim::Task<std::vector<std::int64_t>> allreduce_sum(
      const Comm& comm, std::vector<std::int64_t> contribution);

  /// All-to-all broadcast (MPI_Allgather) — the paper's other §7
  /// future-work collective: every rank's block reaches every rank, each
  /// block travelling down its root's NIC-multicast tree.  All blocks must
  /// have the same size.  Returns the blocks indexed by rank.
  sim::Task<std::vector<Payload>> allgather(const Comm& comm, Payload mine);

 private:
  friend class World;

  struct Matched {
    Envelope envelope;
    net::NodeId src_node = 0;
    net::GroupId group = net::kNoGroup;
    Payload data;
  };
  using Predicate = std::function<bool(const Matched&)>;

  /// Core matching loop: consults the unexpected queue, then pumps the GM
  /// port.  Broadcast-setup control messages are handled transparently
  /// whenever the process is inside any MPI call.
  sim::Task<Matched> match(Predicate predicate);
  /// Charges host CPU: the per-call overhead plus an eager-mode copy of
  /// `copy_bytes` through the bounce buffers.
  sim::Task<void> charge_host(std::size_t copy_bytes);
  void handle_setup(const Matched& msg);
  sim::Task<void> eager_send(const Comm& comm, int dest, Envelope env,
                             Payload data);
  sim::Task<void> rendezvous_send(const Comm& comm, int dest, Envelope env,
                                  Payload data);
  sim::Task<void> barrier_dissemination(const Comm& comm);
  sim::Task<void> barrier_nic(const Comm& comm);
  sim::Task<void> bcast_host_based(const Comm& comm, Payload& data, int root,
                                   std::uint16_t op_seq);
  sim::Task<void> bcast_nic_based(const Comm& comm, Payload& data, int root,
                                  std::uint16_t op_seq);
  sim::Task<void> bcast_nic_rdma(const Comm& comm, Payload& data, int root,
                                 std::uint16_t op_seq);
  /// Demand-driven creation of the (comm, root) multicast group; no-op if
  /// already installed on this rank.  Root side distributes the tree and
  /// waits for acks; members install via setup messages inside match().
  sim::Task<void> ensure_group(const Comm& comm, int root,
                               std::size_t tree_hint_bytes);
  void replenish_eager_buffer();
  [[nodiscard]] net::GroupId group_for(const Comm& comm, int root) const;

  World& world_;
  gm::Port& port_;
  std::deque<Matched> unexpected_;
  // Per-(context, peer-kind) sequence counters for barrier/bcast matching.
  std::unordered_map<std::uint32_t, std::uint16_t> op_seq_;
  // Groups this rank has installed (demand-driven creation).
  std::unordered_set<net::GroupId> installed_groups_;
  // Setup acks collected at the root before the group is usable.
  std::unordered_map<net::GroupId, std::size_t> setup_acks_;
  bool in_call_ = false;
  ProcessStats stats_;
};

/// The MPI "job": one Process per cluster node, a world communicator and a
/// registry for derived communicators.
class World {
 public:
  World(gm::Cluster& cluster, MpiConfig config = {});

  [[nodiscard]] gm::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const MpiConfig& config() const { return config_; }
  [[nodiscard]] const Comm& comm_world() const { return comm_world_; }
  [[nodiscard]] Process& process(int rank) { return *processes_.at(rank); }
  [[nodiscard]] int size() const {
    return static_cast<int>(processes_.size());
  }

  /// Creates a communicator over `members` (node ids); the same Comm object
  /// is visible to every process, as if created collectively.
  const Comm& create_comm(std::vector<net::NodeId> members);

  /// Spawns `main(process)` on every rank; returns the process handles.
  /// The callable is kept alive by the World: a coroutine lambda's captures
  /// live in its closure object, which every spawned coroutine keeps
  /// referencing until it completes.
  std::vector<sim::ProcessRef> launch(
      std::function<sim::Task<void>(Process&)> main);

  /// Runs the simulation to completion.
  void run() { cluster_.run(); }

 private:
  gm::Cluster& cluster_;
  MpiConfig config_;
  Comm comm_world_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Comm> comms_;
  // Launched rank programs; kept alive because the spawned coroutines read
  // their lambda captures out of these closure objects.
  std::deque<std::function<sim::Task<void>(Process&)>> mains_;
  std::uint8_t next_context_ = 1;
};

}  // namespace nicmcast::mpi

// MPI message envelope, packed into the GM 32-bit tag field.
//
// Layout: [31:28] kind | [27:20] communicator context id | [19:4] MPI tag |
// [3:0] reserved.  The source rank is recovered from the GM source node id
// through the communicator's member table.
#pragma once

#include <cstdint>

namespace nicmcast::mpi {

enum class Kind : std::uint8_t {
  kEager = 1,      // eager-mode point-to-point data
  kRndvRts = 2,    // rendezvous request-to-send (payload: 8-byte size)
  kRndvCts = 3,    // rendezvous clear-to-send
  kRndvData = 4,   // rendezvous bulk data
  kBcast = 5,      // host-based broadcast data / NIC-based multicast data
  kBcastSetup = 6, // demand-driven group creation: tree entry for a member
  kBcastSetupAck = 7,
  kBarrier = 8,    // dissemination barrier round
  kReduce = 9,     // reduction contribution (Allreduce upward phase)
};

struct Envelope {
  Kind kind = Kind::kEager;
  std::uint8_t context = 0;
  std::uint16_t tag = 0;

  [[nodiscard]] std::uint32_t encode() const {
    return (static_cast<std::uint32_t>(kind) << 28) |
           (static_cast<std::uint32_t>(context) << 20) |
           (static_cast<std::uint32_t>(tag) << 4);
  }

  static Envelope decode(std::uint32_t raw) {
    Envelope e;
    e.kind = static_cast<Kind>((raw >> 28) & 0xF);
    e.context = static_cast<std::uint8_t>((raw >> 20) & 0xFF);
    e.tag = static_cast<std::uint16_t>((raw >> 4) & 0xFFFF);
    return e;
  }

  [[nodiscard]] bool operator==(const Envelope&) const = default;
};

}  // namespace nicmcast::mpi

#include "mpi/skew.hpp"

#include <algorithm>

#include "sim/stats.hpp"

namespace nicmcast::mpi {

SkewResult run_skew_experiment(const SkewConfig& config) {
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = config.nodes;
  cluster_config.seed = config.seed;
  gm::Cluster cluster(cluster_config);

  MpiConfig mpi_config;
  mpi_config.bcast_algorithm = config.algorithm;
  World world(cluster, mpi_config);

  sim::OnlineStats cpu_all;
  sim::OnlineStats cpu_max_per_rank;
  sim::OnlineStats applied_skew;

  world.launch([&, config](Process& self) -> sim::Task<void> {
    // Independent, deterministic skew stream per rank.
    sim::Rng rng(config.seed * 1315423911u + self.rank());
    sim::OnlineStats my_cpu;
    double my_max = 0.0;
    for (int iter = 0; iter < config.warmup + config.iterations; ++iter) {
      co_await self.barrier();
      if (self.rank() != config.root && config.max_skew > sim::Duration{0}) {
        const double half = config.max_skew.microseconds() / 2.0;
        const double skew_us = rng.uniform(-half, half);
        if (skew_us > 0) {
          // Positive skew: the rank computes before entering the bcast.
          co_await self.simulator().wait(sim::usec(skew_us));
          if (iter >= config.warmup) applied_skew.add(skew_us);
        } else if (iter >= config.warmup) {
          applied_skew.add(0.0);
        }
      }
      Payload data(config.message_bytes);
      if (self.rank() == config.root) {
        std::fill(data.begin(), data.end(), std::byte{0x5a});
      }
      co_await self.bcast(data, config.root);
      if (data.size() != config.message_bytes) {
        throw std::logic_error("skew experiment: bad broadcast payload");
      }
      if (iter >= config.warmup) {
        const double us = self.stats().last_bcast_time.microseconds();
        my_cpu.add(us);
        if (us > my_max) my_max = us;
      }
    }
    cpu_all.add(my_cpu.mean());
    cpu_max_per_rank.add(my_max);
  });
  world.run();

  SkewResult result;
  result.avg_bcast_cpu_us = cpu_all.mean();
  result.max_bcast_cpu_us = cpu_max_per_rank.mean();
  result.avg_applied_skew_us =
      applied_skew.count() > 0 ? applied_skew.mean() : 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nic::accumulate(result.nic_totals, cluster.nic(i).stats());
  }
  result.queue_stats = cluster.simulator().queue_stats();
  result.event_order_hash = cluster.simulator().event_order_hash();
  return result;
}

}  // namespace nicmcast::mpi

#include "mpi/mpi.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace nicmcast::mpi {

namespace {

constexpr std::size_t kEagerBufferCapacity = 16287;

/// Reserved tag space for internal broadcast traffic.
constexpr std::uint16_t kBcastTagBase = 0xB000;

Payload encode_u64(std::uint64_t v) {
  Payload p(8);
  for (int i = 0; i < 8; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(v >> (8 * i))};
  }
  return p;
}

std::uint64_t decode_u64(const Payload& p, std::size_t offset = 0) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p.at(offset + i)) << (8 * i);
  }
  return v;
}

/// The group-setup payload serialises node ids in 16 bits (the historical
/// NodeId width); kNoNode maps onto the all-ones 16-bit pattern so the wire
/// bytes are unchanged by the NodeId widening.  The classic gm::Cluster
/// stack this path serves cannot build >65535-endpoint clusters (Topology
/// already guards), but the truncation check keeps the invariant loud.
constexpr std::uint16_t kWireNoNode = 0xFFFF;

std::uint16_t encode_node_id(net::NodeId id) {
  if (id == nic::kNoNode) return kWireNoNode;
  if (id >= kWireNoNode) {
    throw std::length_error(
        "mpi group setup: node id " + std::to_string(id) +
        " does not fit the 16-bit group-entry wire format");
  }
  return static_cast<std::uint16_t>(id);
}

net::NodeId decode_node_id(std::uint16_t wire) {
  return wire == kWireNoNode ? nic::kNoNode : static_cast<net::NodeId>(wire);
}

/// Serialised NIC group-table entry carried by a kBcastSetup message:
/// [0..7] group id, [8..9] parent, [10..11] child count, then children.
Payload encode_entry(net::GroupId group, const nic::GroupEntry& entry) {
  Payload p(12 + entry.children.size() * 2);
  for (int i = 0; i < 8; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(group) >> (8 * i))};
  }
  const std::uint16_t parent = encode_node_id(entry.parent);
  p[8] = std::byte{static_cast<std::uint8_t>(parent & 0xFF)};
  p[9] = std::byte{static_cast<std::uint8_t>(parent >> 8)};
  const auto count = static_cast<std::uint16_t>(entry.children.size());
  p[10] = std::byte{static_cast<std::uint8_t>(count & 0xFF)};
  p[11] = std::byte{static_cast<std::uint8_t>(count >> 8)};
  for (std::size_t i = 0; i < entry.children.size(); ++i) {
    const std::uint16_t child = encode_node_id(entry.children[i]);
    p[12 + 2 * i] = std::byte{static_cast<std::uint8_t>(child & 0xFF)};
    p[13 + 2 * i] = std::byte{static_cast<std::uint8_t>(child >> 8)};
  }
  return p;
}

std::pair<net::GroupId, nic::GroupEntry> decode_entry(const Payload& p) {
  const auto group = static_cast<net::GroupId>(decode_u64(p));
  nic::GroupEntry entry;
  entry.parent = decode_node_id(static_cast<std::uint16_t>(
      std::to_integer<std::uint16_t>(p.at(8)) |
      (std::to_integer<std::uint16_t>(p.at(9)) << 8)));
  const auto count = static_cast<std::uint16_t>(
      std::to_integer<std::uint16_t>(p.at(10)) |
      (std::to_integer<std::uint16_t>(p.at(11)) << 8));
  entry.children.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    entry.children.push_back(decode_node_id(static_cast<std::uint16_t>(
        std::to_integer<std::uint16_t>(p.at(12 + 2 * i)) |
        (std::to_integer<std::uint16_t>(p.at(13 + 2 * i)) << 8))));
  }
  return {group, entry};
}

/// Binomial-tree relations over relative ranks (MPICH mask<<=1 order).
struct BinomialRole {
  int parent_vrank = -1;
  std::vector<int> child_vranks;  // ascending mask: deepest subtree last
};

BinomialRole binomial_role(int vrank, int n) {
  BinomialRole role;
  if (vrank != 0) {
    role.parent_vrank = vrank & (vrank - 1);
  }
  // Children: vrank | mask for masks above vrank's lowest set bit.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank != 0 && (vrank & mask) != 0) break;  // past our lowest bit
    const int child = vrank | mask;
    if (child != vrank && child < n) role.child_vranks.push_back(child);
  }
  return role;
}

/// RAII guard: MPI calls are serialised per rank.
class CallGuard {
 public:
  explicit CallGuard(bool& flag) : flag_(flag) {
    if (flag_) {
      throw std::logic_error("concurrent MPI calls on one rank");
    }
    flag_ = true;
  }
  ~CallGuard() { flag_ = false; }
  CallGuard(const CallGuard&) = delete;
  CallGuard& operator=(const CallGuard&) = delete;

 private:
  bool& flag_;
};

}  // namespace

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(gm::Cluster& cluster, MpiConfig config)
    : cluster_(cluster), config_(config) {
  std::vector<net::NodeId> members;
  members.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    members.push_back(static_cast<net::NodeId>(i));
  }
  comm_world_ = Comm(0, std::move(members));
  processes_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    gm::Port& port = cluster.port(i);
    port.provide_receive_buffers(config_.eager_buffers, kEagerBufferCapacity);
    processes_.push_back(std::make_unique<Process>(*this, port));
  }
}

const Comm& World::create_comm(std::vector<net::NodeId> members) {
  if (next_context_ == 0) {
    throw std::runtime_error("communicator context ids exhausted");
  }
  comms_.emplace_back(next_context_++, std::move(members));
  return comms_.back();
}

std::vector<sim::ProcessRef> World::launch(
    std::function<sim::Task<void>(Process&)> main) {
  mains_.push_back(std::move(main));
  const auto& stored = mains_.back();
  std::vector<sim::ProcessRef> handles;
  handles.reserve(processes_.size());
  for (auto& process : processes_) {
    handles.push_back(cluster_.simulator().spawn(
        stored(*process), "rank" + std::to_string(process->rank())));
  }
  return handles;
}

// ---------------------------------------------------------------------------
// Process: plumbing
// ---------------------------------------------------------------------------

Process::Process(World& world, gm::Port& port)
    : world_(world), port_(port) {}

int Process::rank() const {
  return world_.comm_world().rank_of(port_.node());
}
int Process::size() const { return world_.comm_world().size(); }
const Comm& Process::world_comm() const { return world_.comm_world(); }

void Process::replenish_eager_buffer() {
  port_.provide_receive_buffer(kEagerBufferCapacity);
}

sim::Task<void> Process::charge_host(std::size_t copy_bytes) {
  sim::Duration cost = world_.config().call_overhead;
  if (copy_bytes > 0) {
    cost += sim::transfer_time(copy_bytes, world_.config().host_copy_mbps);
  }
  co_await simulator().wait(cost);
}

net::GroupId Process::group_for(const Comm& comm, int root) const {
  // Unique, deterministic, never kNoGroup.
  return 0x01000000u | (static_cast<net::GroupId>(comm.context()) << 12) |
         static_cast<net::GroupId>(root + 1);
}

sim::Task<Process::Matched> Process::match(Predicate predicate) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (predicate(*it)) {
      Matched m = std::move(*it);
      unexpected_.erase(it);
      co_return m;
    }
  }
  for (;;) {
    gm::RecvMessage raw = co_await port_.receive();
    Matched m;
    m.envelope = Envelope::decode(raw.tag);
    m.src_node = raw.src;
    m.group = raw.group;
    m.data = std::move(raw.data);
    // Rendezvous bulk data used its own exact-size buffer; everything else
    // consumed one from the eager pool.
    if (m.envelope.kind != Kind::kRndvData) replenish_eager_buffer();
    if (m.envelope.kind == Kind::kBcastSetup) {
      // Demand-driven group creation: install and acknowledge whenever this
      // rank is inside any MPI call.
      handle_setup(m);
      const Envelope ack{Kind::kBcastSetupAck, m.envelope.context,
                         m.envelope.tag};
      const gm::SendStatus status = co_await port_.send(
          m.src_node, port_.port_id(), Payload{}, ack.encode());
      if (status != gm::SendStatus::kOk) {
        throw std::runtime_error("setup ack failed");
      }
      continue;
    }
    if (predicate(m)) co_return m;
    unexpected_.push_back(std::move(m));
  }
}

void Process::handle_setup(const Matched& msg) {
  auto [group, entry] = decode_entry(msg.data);
  port_.set_group(group, std::move(entry));
  installed_groups_.insert(group);
  ++stats_.groups_created;
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

sim::Task<void> Process::send(int dest, std::uint16_t tag, Payload data) {
  co_await send(world_.comm_world(), dest, tag, std::move(data));
}

sim::Task<void> Process::send(const Comm& comm, int dest, std::uint16_t tag,
                              Payload data) {
  CallGuard guard(in_call_);
  ++stats_.sends;
  if (comm.node_of(dest) == port_.node() &&
      data.size() > world_.config().eager_limit) {
    // A blocking rendezvous to self cannot complete (the matching receive
    // runs in the same, currently blocked, rank) — standard MPI declares
    // this erroneous.
    throw std::logic_error("send-to-self above the eager limit deadlocks");
  }
  const Envelope env{data.size() <= world_.config().eager_limit
                         ? Kind::kEager
                         : Kind::kRndvRts,
                     comm.context(), tag};
  if (env.kind == Kind::kEager) {
    co_await eager_send(comm, dest, env, std::move(data));
  } else {
    co_await rendezvous_send(comm, dest, env, std::move(data));
  }
}

sim::Task<void> Process::eager_send(const Comm& comm, int dest, Envelope env,
                                    Payload data) {
  // Eager mode copies the user buffer into a pre-registered bounce buffer.
  co_await charge_host(data.size());
  const gm::SendStatus status = co_await port_.send(
      comm.node_of(dest), port_.port_id(), std::move(data), env.encode());
  if (status != gm::SendStatus::kOk) {
    throw std::runtime_error("eager send failed (peer unreachable)");
  }
}

sim::Task<void> Process::rendezvous_send(const Comm& comm, int dest,
                                         Envelope env, Payload data) {
  co_await charge_host(0);  // handshake bookkeeping; RDMA path, no copy
  const net::NodeId peer = comm.node_of(dest);
  // RTS announces the size; the receiver posts an exact-size buffer and
  // clears us to send (MPICH-GM uses remote DMA here — the exact-size
  // preposted buffer models the RDMA target).
  Envelope rts{Kind::kRndvRts, env.context, env.tag};
  gm::SendStatus status = co_await port_.send(
      peer, port_.port_id(), encode_u64(data.size()), rts.encode());
  if (status != gm::SendStatus::kOk) {
    throw std::runtime_error("rendezvous RTS failed");
  }
  co_await match([&](const Matched& m) {
    return m.envelope.kind == Kind::kRndvCts &&
           m.envelope.context == env.context && m.envelope.tag == env.tag &&
           m.src_node == peer;
  });
  Envelope bulk{Kind::kRndvData, env.context, env.tag};
  status = co_await port_.send(peer, port_.port_id(), std::move(data),
                               bulk.encode());
  if (status != gm::SendStatus::kOk) {
    throw std::runtime_error("rendezvous data failed");
  }
}

sim::Task<Payload> Process::recv(int src, std::uint16_t tag) {
  co_return co_await recv(world_.comm_world(), src, tag);
}

sim::Task<Payload> Process::recv(const Comm& comm, int src,
                                 std::uint16_t tag) {
  CallGuard guard(in_call_);
  ++stats_.receives;
  const net::NodeId peer = comm.node_of(src);
  Matched first = co_await match([&](const Matched& m) {
    return (m.envelope.kind == Kind::kEager ||
            m.envelope.kind == Kind::kRndvRts) &&
           m.envelope.context == comm.context() && m.envelope.tag == tag &&
           m.src_node == peer && m.group == net::kNoGroup;
  });
  if (first.envelope.kind == Kind::kEager) {
    // Copy from the bounce buffer to the user's buffer.
    co_await charge_host(first.data.size());
    co_return std::move(first.data);
  }
  // Rendezvous: post the landing buffer, clear the sender, await the bulk.
  const std::uint64_t size = decode_u64(first.data);
  port_.provide_receive_buffer(size);
  const Envelope cts{Kind::kRndvCts, comm.context(), tag};
  const gm::SendStatus status = co_await port_.send(
      peer, port_.port_id(), Payload{}, cts.encode());
  if (status != gm::SendStatus::kOk) {
    throw std::runtime_error("rendezvous CTS failed");
  }
  Matched bulk = co_await match([&](const Matched& m) {
    return m.envelope.kind == Kind::kRndvData &&
           m.envelope.context == comm.context() && m.envelope.tag == tag &&
           m.src_node == peer;
  });
  co_return std::move(bulk.data);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

sim::Task<void> Process::barrier() {
  co_await barrier(world_.comm_world());
}

sim::Task<void> Process::barrier(const Comm& comm) {
  co_await barrier(comm, world_.config().barrier_algorithm);
}

sim::Task<void> Process::barrier(const Comm& comm,
                                 BarrierAlgorithm algorithm) {
  if (comm.size() <= 1) co_return;
  if (algorithm == BarrierAlgorithm::kNicBased) {
    co_await barrier_nic(comm);
  } else {
    co_await barrier_dissemination(comm);
  }
}

sim::Task<void> Process::barrier_nic(const Comm& comm) {
  // NIC-level barrier over the (comm, root 0) multicast tree.  The first
  // call bootstraps the group with an empty NIC-based broadcast (the same
  // demand-driven creation the bcast path uses); after that, entering the
  // barrier is a single NIC posting and the gather/release runs entirely
  // in the NIC firmware.
  const net::GroupId group = group_for(comm, /*root=*/0);
  if (!installed_groups_.contains(group)) {
    Payload empty;
    co_await bcast(comm, empty, 0, BcastAlgorithm::kNicBased);
  }
  CallGuard guard(in_call_);
  ++stats_.barriers;
  co_await port_.nic_barrier(group);
}

sim::Task<void> Process::barrier_dissemination(const Comm& comm) {
  CallGuard guard(in_call_);
  ++stats_.barriers;
  const int n = comm.size();
  const int me = comm.rank_of(port_.node());
  if (me < 0) throw std::logic_error("barrier: not a member");
  if (n == 1) co_return;

  const std::uint32_t seq_key =
      (static_cast<std::uint32_t>(comm.context()) << 8) | 0x01;
  const std::uint16_t seq = op_seq_[seq_key]++;

  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (me + dist) % n;
    const int from = (me - dist % n + n) % n;
    const auto tag = static_cast<std::uint16_t>((seq << 4) | round);
    const Envelope env{Kind::kBarrier, comm.context(), tag};
    const gm::SendStatus status = co_await port_.send(
        comm.node_of(to), port_.port_id(), Payload{}, env.encode());
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("barrier send failed");
    }
    const net::NodeId from_node = comm.node_of(from);
    co_await match([&](const Matched& m) {
      return m.envelope.kind == Kind::kBarrier &&
             m.envelope.context == comm.context() && m.envelope.tag == tag &&
             m.src_node == from_node;
    });
  }
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

sim::Task<void> Process::bcast(Payload& data, int root) {
  co_await bcast(world_.comm_world(), data, root);
}

sim::Task<void> Process::bcast(const Comm& comm, Payload& data, int root) {
  co_await bcast(comm, data, root, world_.config().bcast_algorithm);
}

sim::Task<void> Process::bcast(const Comm& comm, Payload& data, int root,
                               BcastAlgorithm algorithm) {
  CallGuard guard(in_call_);
  ++stats_.bcasts;
  const sim::TimePoint entered = simulator().now();
  if (comm.rank_of(port_.node()) < 0) {
    throw std::logic_error("bcast: not a member");
  }
  const std::uint32_t seq_key =
      (static_cast<std::uint32_t>(comm.context()) << 8) | 0x02u |
      (static_cast<std::uint32_t>(root) << 16);
  const std::uint16_t op_seq = op_seq_[seq_key]++;

  if (comm.size() > 1) {
    // The NIC-based path serves eager-mode sizes; larger broadcasts keep
    // the original rendezvous-based host path (paper §5) unless the
    // RDMA-multicast extension is enabled (paper §7 future work).
    if (algorithm == BcastAlgorithm::kNicBased &&
        data.size() <= world_.config().eager_limit) {
      co_await bcast_nic_based(comm, data, root, op_seq);
    } else if (algorithm == BcastAlgorithm::kNicBased &&
               world_.config().rdma_multicast) {
      co_await bcast_nic_rdma(comm, data, root, op_seq);
    } else {
      co_await bcast_host_based(comm, data, root, op_seq);
    }
  }
  const sim::Duration elapsed = simulator().now() - entered;
  stats_.last_bcast_time = elapsed;
  stats_.bcast_cpu_time += elapsed;
}

sim::Task<void> Process::bcast_host_based(const Comm& comm, Payload& data,
                                          int root, std::uint16_t op_seq) {
  const int n = comm.size();
  const int me = comm.rank_of(port_.node());
  const int vrank = (me - root + n) % n;
  const BinomialRole role = binomial_role(vrank, n);
  const auto tag =
      static_cast<std::uint16_t>(kBcastTagBase | (op_seq & 0x0FFF));

  if (role.parent_vrank >= 0) {
    const int parent_rank = (role.parent_vrank + root) % n;
    const net::NodeId parent_node = comm.node_of(parent_rank);
    // Receive from the parent (eager or rendezvous by size).
    Matched first = co_await match([&](const Matched& m) {
      return (m.envelope.kind == Kind::kEager ||
              m.envelope.kind == Kind::kRndvRts) &&
             m.envelope.context == comm.context() && m.envelope.tag == tag &&
             m.src_node == parent_node && m.group == net::kNoGroup;
    });
    if (first.envelope.kind == Kind::kEager) {
      co_await charge_host(first.data.size());
      data = std::move(first.data);
    } else {
      const std::uint64_t size = decode_u64(first.data);
      port_.provide_receive_buffer(size);
      const Envelope cts{Kind::kRndvCts, comm.context(), tag};
      co_await port_.send(parent_node, port_.port_id(), Payload{},
                          cts.encode());
      Matched bulk = co_await match([&](const Matched& m) {
        return m.envelope.kind == Kind::kRndvData &&
               m.envelope.context == comm.context() &&
               m.envelope.tag == tag && m.src_node == parent_node;
      });
      data = std::move(bulk.data);
    }
  }

  if (data.size() <= world_.config().eager_limit) {
    // Eager: copy into the registered send buffer once, then post every
    // child's send back to back and await the completions (MPICH-GM's
    // gm_send_with_callback fan-out).
    const Envelope env{Kind::kEager, comm.context(), tag};
    std::vector<nic::OpHandle> handles;
    if (!role.child_vranks.empty()) co_await charge_host(data.size());
    for (int child_vrank : role.child_vranks) {
      const int child_rank = (child_vrank + root) % n;
      co_await simulator().wait(port_.nic().config().host_post_overhead);
      handles.push_back(port_.post_send_nowait(
          comm.node_of(child_rank), port_.port_id(), data, env.encode()));
    }
    for (nic::OpHandle h : handles) {
      if (co_await port_.wait_completion(h) != gm::SendStatus::kOk) {
        throw std::runtime_error("bcast send failed");
      }
    }
  } else {
    // Rendezvous sends are inherently sequential handshakes.
    for (int child_vrank : role.child_vranks) {
      const int child_rank = (child_vrank + root) % n;
      const Envelope env{Kind::kRndvRts, comm.context(), tag};
      co_await rendezvous_send(comm, child_rank, env, data);
    }
  }
}

sim::Task<void> Process::ensure_group(const Comm& comm, int root,
                                      std::size_t tree_hint_bytes) {
  const net::GroupId group = group_for(comm, root);
  if (installed_groups_.contains(group)) co_return;
  if (comm.rank_of(port_.node()) != root) {
    // Members are installed via the setup message handled inside match();
    // nothing to do proactively.
    co_return;
  }
  // First broadcast from this (communicator, root): the root's host builds
  // the optimal tree and distributes group-table entries (demand-driven
  // creation, paper §5).  The tree shape is chosen for the first message's
  // size and reused afterwards.
  const auto cost = mcast::PostalCostModel::nic_based(
      tree_hint_bytes, port_.nic().config(), net::NetworkConfig{});
  std::vector<net::NodeId> dests = comm.members();
  std::erase(dests, port_.node());
  const mcast::Tree tree =
      mcast::build_postal_tree(port_.node(), std::move(dests), cost);

  const auto setup_tag = static_cast<std::uint16_t>(group & 0xFFFF);
  const Envelope setup{Kind::kBcastSetup, comm.context(), setup_tag};
  for (net::NodeId member : tree.nodes()) {
    if (member == port_.node()) continue;
    const gm::SendStatus status = co_await port_.send(
        member, port_.port_id(),
        encode_entry(group, tree.entry_for(member, port_.port_id())),
        setup.encode());
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("group setup send failed");
    }
  }
  std::size_t acks = 0;
  while (acks + 1 < static_cast<std::size_t>(comm.size())) {
    co_await match([&](const Matched& m) {
      return m.envelope.kind == Kind::kBcastSetupAck &&
             m.envelope.context == comm.context() &&
             m.envelope.tag == setup_tag;
    });
    ++acks;
  }
  port_.set_group(group, tree.entry_for(port_.node(), port_.port_id()));
  installed_groups_.insert(group);
  ++stats_.groups_created;
}

sim::Task<void> Process::bcast_nic_based(const Comm& comm, Payload& data,
                                         int root, std::uint16_t op_seq) {
  const int me = comm.rank_of(port_.node());
  const net::GroupId group = group_for(comm, root);
  const auto data_tag =
      static_cast<std::uint16_t>(kBcastTagBase | (op_seq & 0x0FFF));

  if (me == root) {
    co_await ensure_group(comm, root, data.size());
    const Envelope env{Kind::kBcast, comm.context(), data_tag};
    co_await charge_host(data.size());
    const gm::SendStatus status =
        co_await port_.mcast_send(group, data, env.encode());
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("NIC multicast send failed");
    }
    co_return;
  }

  // Non-root: the group entry arrives via a setup message (handled inside
  // match() on the first broadcast); the data is a NIC-forwarded multicast.
  Matched m = co_await match([&](const Matched& msg) {
    return msg.envelope.kind == Kind::kBcast && msg.group == group &&
           msg.envelope.context == comm.context() &&
           msg.envelope.tag == data_tag;
  });
  if (m.data.size() != data.size()) {
    throw std::logic_error("bcast: buffer size mismatch across ranks");
  }
  co_await charge_host(m.data.size());
  data = std::move(m.data);
}

sim::Task<void> Process::bcast_nic_rdma(const Comm& comm, Payload& data,
                                        int root, std::uint16_t op_seq) {
  // Extension (paper §7): "NIC-based multicast using remote DMA
  // operations".  Protocol:
  //   1. the root NIC-multicasts a tiny announce carrying the size,
  //   2. every member registers an exact-size landing buffer (the RDMA
  //      target) and replies ready,
  //   3. the root NIC-multicasts the payload itself — per-packet NIC
  //      forwarding down the tree, straight into the registered buffers,
  //      no bounce-buffer copies at any host.
  const int me = comm.rank_of(port_.node());
  const net::GroupId group = group_for(comm, root);
  const auto data_tag =
      static_cast<std::uint16_t>(kBcastTagBase | (op_seq & 0x0FFF));

  if (me == root) {
    co_await ensure_group(comm, root, data.size());
    // 1. Announce the size down the tree.
    const Envelope announce{Kind::kRndvRts, comm.context(), data_tag};
    gm::SendStatus status = co_await port_.mcast_send(
        group, encode_u64(data.size()), announce.encode());
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("RDMA-multicast announce failed");
    }
    // 2. Collect every member's ready.
    std::size_t ready = 0;
    while (ready + 1 < static_cast<std::size_t>(comm.size())) {
      co_await match([&](const Matched& m) {
        return m.envelope.kind == Kind::kRndvCts &&
               m.envelope.context == comm.context() &&
               m.envelope.tag == data_tag;
      });
      ++ready;
    }
    // 3. Stream the payload (registration bookkeeping only; no copy).
    co_await charge_host(0);
    const Envelope bulk{Kind::kRndvData, comm.context(), data_tag};
    status = co_await port_.mcast_send(group, data, bulk.encode());
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("RDMA-multicast data failed");
    }
    co_return;
  }

  // Member: wait for the announce (the group's setup message is handled
  // inside match() on a first-ever broadcast), post the landing buffer,
  // signal ready, receive the stream.
  Matched announce = co_await match([&](const Matched& m) {
    return m.envelope.kind == Kind::kRndvRts && m.group == group &&
           m.envelope.context == comm.context() &&
           m.envelope.tag == data_tag;
  });
  const std::uint64_t size = decode_u64(announce.data);
  if (size != data.size()) {
    throw std::logic_error("bcast: buffer size mismatch across ranks");
  }
  port_.provide_receive_buffer(size);
  co_await charge_host(0);  // registration bookkeeping
  const Envelope ready{Kind::kRndvCts, comm.context(), data_tag};
  const gm::SendStatus status = co_await port_.send(
      comm.node_of(root), port_.port_id(), Payload{}, ready.encode());
  if (status != gm::SendStatus::kOk) {
    throw std::runtime_error("RDMA-multicast ready failed");
  }
  Matched bulk = co_await match([&](const Matched& m) {
    return m.envelope.kind == Kind::kRndvData && m.group == group &&
           m.envelope.context == comm.context() &&
           m.envelope.tag == data_tag;
  });
  data = std::move(bulk.data);  // landed directly; no bounce copy
}

// ---------------------------------------------------------------------------
// Allreduce (future-work collective, paper §7)
// ---------------------------------------------------------------------------

sim::Task<std::vector<std::int64_t>> Process::allreduce_sum(
    const Comm& comm, std::vector<std::int64_t> contribution) {
  const int n = comm.size();
  const int me = comm.rank_of(port_.node());
  if (me < 0) throw std::logic_error("allreduce: not a member");

  if (world_.config().nic_reduction && n > 1) {
    // NIC-level reduction up the (comm, root 0) tree, then a NIC-based
    // broadcast of the sum back down.
    const net::GroupId group = group_for(comm, 0);
    if (!installed_groups_.contains(group)) {
      Payload empty;
      co_await bcast(comm, empty, 0, BcastAlgorithm::kNicBased);
    }
    Payload blob(contribution.size() * 8);
    std::memcpy(blob.data(), contribution.data(), blob.size());
    Payload reduced;
    {
      CallGuard guard(in_call_);
      reduced = co_await port_.nic_reduce(group, std::move(blob));
    }
    Payload result = me == 0 ? std::move(reduced)
                             : Payload(contribution.size() * 8);
    co_await bcast(comm, result, 0);
    std::vector<std::int64_t> sum(contribution.size());
    std::memcpy(sum.data(), result.data(), result.size());
    co_return sum;
  }

  const std::uint32_t seq_key =
      (static_cast<std::uint32_t>(comm.context()) << 8) | 0x03;
  std::uint16_t op_seq;
  {
    CallGuard guard(in_call_);
    op_seq = op_seq_[seq_key]++;
  }
  const auto tag = static_cast<std::uint16_t>(0xA000 | (op_seq & 0x0FFF));

  // Reduce up the binomial tree rooted at rank 0.
  const BinomialRole role = binomial_role(me, n);
  auto encode_vec = [](const std::vector<std::int64_t>& v) {
    Payload p(v.size() * 8);
    std::memcpy(p.data(), v.data(), p.size());
    return p;
  };
  auto decode_vec = [](const Payload& p) {
    std::vector<std::int64_t> v(p.size() / 8);
    std::memcpy(v.data(), p.data(), p.size());
    return v;
  };

  // Children are received deepest-subtree-first to overlap their arrival.
  // Contributions travel through the full MPI protocol (eager or
  // rendezvous by size) under a reserved tag.
  for (auto it = role.child_vranks.rbegin(); it != role.child_vranks.rend();
       ++it) {
    const Payload blob = co_await recv(comm, *it, tag);
    const auto partial = decode_vec(blob);
    if (partial.size() != contribution.size()) {
      throw std::logic_error("allreduce: mismatched vector sizes");
    }
    for (std::size_t i = 0; i < contribution.size(); ++i) {
      contribution[i] += partial[i];
    }
  }
  if (role.parent_vrank >= 0) {
    co_await send(comm, role.parent_vrank, tag, encode_vec(contribution));
  }

  // Broadcast the result down with the NIC-based multicast.
  Payload result = me == 0 ? encode_vec(contribution)
                           : Payload(contribution.size() * 8);
  co_await bcast(comm, result, 0);
  co_return decode_vec(result);
}

sim::Task<std::vector<Payload>> Process::allgather(const Comm& comm,
                                                   Payload mine) {
  const int n = comm.size();
  const int me = comm.rank_of(port_.node());
  if (me < 0) throw std::logic_error("allgather: not a member");
  const std::size_t block = mine.size();

  std::vector<Payload> blocks(n);
  for (int root = 0; root < n; ++root) {
    Payload buffer = root == me ? mine : Payload(block);
    co_await bcast(comm, buffer, root);
    blocks[root] = std::move(buffer);
  }
  co_return blocks;
}

}  // namespace nicmcast::mpi

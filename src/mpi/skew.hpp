// Process-skew experiment harness (paper §6.3, Figures 6 and 7).
//
// All ranks synchronise with a barrier, then every non-root rank draws a
// uniform skew in [-max/2, +max/2]; ranks with a positive draw compute for
// that long before calling MPI_Bcast.  The measured quantity is the average
// host CPU time spent inside the (blocking, polling) MPI_Bcast — with the
// host-based algorithm a delayed intermediate process keeps its whole
// subtree spinning; with the NIC-based multicast the NIC forwards
// regardless of what the host process is doing.
#pragma once

#include <cstdint>

#include "mpi/mpi.hpp"
#include "nic/types.hpp"
#include "sim/event_queue.hpp"

namespace nicmcast::mpi {

struct SkewConfig {
  std::size_t nodes = 16;
  std::size_t message_bytes = 4;
  /// Width M of the uniform skew window [-M/2, +M/2].  The paper's x-axis
  /// plots the average skew; for this distribution the mean applied
  /// (positive-part) skew is M/8 and the mean |skew| is M/4.
  sim::Duration max_skew{0};
  int iterations = 60;
  int warmup = 5;
  int root = 0;
  BcastAlgorithm algorithm = BcastAlgorithm::kNicBased;
  std::uint64_t seed = 7;
};

struct SkewResult {
  /// Mean time inside MPI_Bcast across all ranks and measured iterations.
  double avg_bcast_cpu_us = 0.0;
  /// Mean over ranks of each rank's maximum bcast time (tail behaviour).
  double max_bcast_cpu_us = 0.0;
  /// Mean positive skew actually applied (the x-axis value).
  double avg_applied_skew_us = 0.0;
  /// NIC counters summed over every node (observability for the harness:
  /// sends, forwards, retransmissions under skew).
  nic::NicStats nic_totals;
  /// Event-queue counters and executed-order hash of the internal cluster
  /// simulator, so the harness can surface engine throughput per run.
  sim::EventQueue::Stats queue_stats;
  std::uint64_t event_order_hash = 0;
};

/// Builds a cluster, runs the skewed-broadcast loop and reports averages.
[[nodiscard]] SkewResult run_skew_experiment(const SkewConfig& config);

}  // namespace nicmcast::mpi

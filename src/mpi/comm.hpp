// Communicators: an ordered set of member nodes plus a context id that
// isolates its traffic from other communicators (MPI semantics).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

namespace nicmcast::mpi {

class Comm {
 public:
  Comm() = default;
  Comm(std::uint8_t context, std::vector<net::NodeId> members)
      : context_(context), members_(std::move(members)) {
    if (members_.empty()) throw std::invalid_argument("empty communicator");
  }

  [[nodiscard]] std::uint8_t context() const { return context_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  [[nodiscard]] net::NodeId node_of(int rank) const {
    if (rank < 0 || rank >= size()) {
      throw std::out_of_range("rank out of range");
    }
    return members_[rank];
  }

  /// Rank of `node` in this communicator, or -1 if not a member.
  [[nodiscard]] int rank_of(net::NodeId node) const {
    for (int r = 0; r < size(); ++r) {
      if (members_[r] == node) return r;
    }
    return -1;
  }

  [[nodiscard]] bool contains(net::NodeId node) const {
    return rank_of(node) >= 0;
  }

  [[nodiscard]] const std::vector<net::NodeId>& members() const {
    return members_;
  }

 private:
  std::uint8_t context_ = 0;
  std::vector<net::NodeId> members_;
};

}  // namespace nicmcast::mpi

// Immutable refcounted payload buffer.
//
// GM's zero-copy design keeps one copy of a message and hands out
// references; the simulator mirrors that.  A Buffer is an (owner, offset,
// length) view over a shared byte block: copying a Buffer or slicing a
// fragment out of it bumps a refcount instead of duplicating bytes, so NIC
// multicast forwarding, retransmission from send records and per-link
// transit all share the single allocation made when the host posted the
// send.  The bytes are immutable for the Buffer's whole lifetime — fault
// injection marks a packet corrupted via its flag, never by mutating the
// shared bytes (which would corrupt every other holder of the block).
//
// Copies happen in exactly two places, both explicit: copy_of() (host
// posts, reduction accumulators) and to_vector() (landing a payload in
// host memory).  Everything else is slice() and shared_ptr copies.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nicmcast::net {

class Buffer {
 public:
  /// Empty view; data() is nullptr, size() is 0.
  Buffer() = default;

  /// Takes ownership of `bytes` without copying: the vector becomes the
  /// shared block.  This is the host-post boundary — the single allocation
  /// every downstream packet/record slice refers back to.
  [[nodiscard]] static Buffer take(std::vector<std::byte>&& bytes) {
    if (bytes.empty()) return Buffer{};
    // Plain `new` rather than make_shared: GCC 12's -Wfree-nonheap-object
    // misfires on the moved-from vector when the combined control-block
    // allocation is inlined into callers at -O2.
    std::shared_ptr<const std::vector<std::byte>> block(
        new std::vector<std::byte>(std::move(bytes)));
    const std::size_t length = block->size();
    return Buffer{std::move(block), 0, length};
  }

  /// Copies `count` bytes into a fresh block (explicit copy point).
  [[nodiscard]] static Buffer copy_of(const std::byte* bytes,
                                      std::size_t count) {
    return take(std::vector<std::byte>(bytes, bytes + count));
  }

  [[nodiscard]] static Buffer copy_of(const std::vector<std::byte>& bytes) {
    return take(std::vector<std::byte>(bytes));
  }

  /// A fresh block of `count` copies of `value` (tests, padding).  Kept out
  /// of line: GCC 12's -Wfree-nonheap-object misfires on the moved-from
  /// temporary when this is inlined into callers at -O2.
  [[nodiscard]] [[gnu::noinline]] static Buffer filled(std::size_t count,
                                                       std::byte value) {
    return take(std::vector<std::byte>(count, value));
  }

  /// A narrower view of the same block: refcount bump, no byte copies.
  /// This is how a packet carries one MTU-sized fragment of a message.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t count) const {
    if (offset + count > size_) {
      throw std::out_of_range("Buffer::slice: range outside view");
    }
    Buffer out;
    out.block_ = block_;
    out.offset_ = offset_ + offset;
    out.size_ = count;
    return out;
  }

  [[nodiscard]] const std::byte* data() const {
    return block_ ? block_->data() + offset_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const std::byte* begin() const { return data(); }
  [[nodiscard]] const std::byte* end() const { return data() + size_; }

  [[nodiscard]] std::byte operator[](std::size_t index) const {
    return data()[index];
  }

  /// Copies the viewed bytes out into host memory (explicit copy point).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    return std::vector<std::byte>(begin(), end());
  }

  /// True when both views share one block with equal offsets — the
  /// zero-copy assertion used by tests (content equality is operator==).
  [[nodiscard]] bool shares_block_with(const Buffer& other) const {
    return block_ != nullptr && block_ == other.block_;
  }

  /// Content equality (byte-wise over the viewed ranges).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    if (a.size_ != b.size_) return false;
    if (a.size_ == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  Buffer(std::shared_ptr<const std::vector<std::byte>> block,
         std::size_t offset, std::size_t size)
      : block_(std::move(block)), offset_(offset), size_(size) {}

  std::shared_ptr<const std::vector<std::byte>> block_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nicmcast::net

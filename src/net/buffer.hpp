// Immutable refcounted payload buffer.
//
// GM's zero-copy design keeps one copy of a message and hands out
// references; the simulator mirrors that.  A Buffer is an (owner, offset,
// length) view over a shared byte block: copying a Buffer or slicing a
// fragment out of it bumps a refcount instead of duplicating bytes, so NIC
// multicast forwarding, retransmission from send records and per-link
// transit all share the single allocation made when the host posted the
// send.  The bytes are immutable for the Buffer's whole lifetime — fault
// injection marks a packet corrupted via its flag, never by mutating the
// shared bytes (which would corrupt every other holder of the block).
//
// Copies happen in exactly two places, both explicit: copy_of() (host
// posts, reduction accumulators) and to_vector() (landing a payload in
// host memory).  Everything else is slice() and Buffer copies.
//
// Shard safety: the refcount is a std::atomic so a slice posted to another
// shard of the PDES engine can be released there while siblings are still
// referenced on the owning shard.  Increments are relaxed (a new reference
// is always created from an existing one, which keeps the block alive);
// the decrement is acq_rel so the deleting thread observes every write
// made before each release.  The *bytes* need no synchronization — they
// are const from construction on.  This protocol is part of the
// machine-checked concurrency contract (DESIGN.md §4.9): every atomic
// access here carries its explicit memory_order, which the
// nicmcast-memory-order-audit check enforces tree-wide, and the
// release-side `fetch_sub == 1 → delete` shape is exactly the publication
// pattern a relaxed load must never guard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nicmcast::net {

class Buffer {
 public:
  /// Empty view; data() is nullptr, size() is 0.
  Buffer() = default;

  Buffer(const Buffer& other)
      : block_(other.block_), offset_(other.offset_), size_(other.size_) {
    acquire(block_);
  }

  Buffer(Buffer&& other) noexcept
      : block_(std::exchange(other.block_, nullptr)),
        offset_(std::exchange(other.offset_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      acquire(other.block_);  // before release: self-assign-safe ordering
      release(block_);
      block_ = other.block_;
      offset_ = other.offset_;
      size_ = other.size_;
    }
    return *this;
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release(block_);
      block_ = std::exchange(other.block_, nullptr);
      offset_ = std::exchange(other.offset_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~Buffer() { release(block_); }

  /// Takes ownership of `bytes` without copying: the vector becomes the
  /// shared block.  This is the host-post boundary — the single allocation
  /// every downstream packet/record slice refers back to.  Kept out of
  /// line: GCC 12's -Wfree-nonheap-object misfires on the moved-from
  /// vector when the allocation is inlined into callers at -O2.
  [[nodiscard]] [[gnu::noinline]] static Buffer take(
      std::vector<std::byte>&& bytes) {
    if (bytes.empty()) return Buffer{};
    Block* block = new Block(std::move(bytes));  // refs == 1
    return Buffer{block, 0, block->bytes.size()};
  }

  /// Copies `count` bytes into a fresh block (explicit copy point).
  [[nodiscard]] static Buffer copy_of(const std::byte* bytes,
                                      std::size_t count) {
    return take(std::vector<std::byte>(bytes, bytes + count));
  }

  [[nodiscard]] static Buffer copy_of(const std::vector<std::byte>& bytes) {
    return take(std::vector<std::byte>(bytes));
  }

  /// A fresh block of `count` copies of `value` (tests, padding).
  [[nodiscard]] [[gnu::noinline]] static Buffer filled(std::size_t count,
                                                       std::byte value) {
    return take(std::vector<std::byte>(count, value));
  }

  /// A narrower view of the same block: refcount bump, no byte copies.
  /// This is how a packet carries one MTU-sized fragment of a message.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t count) const {
    if (offset + count > size_) {
      throw std::out_of_range("Buffer::slice: range outside view");
    }
    acquire(block_);
    return Buffer{block_, offset_ + offset, count};
  }

  [[nodiscard]] const std::byte* data() const {
    return block_ ? block_->bytes.data() + offset_ : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const std::byte* begin() const { return data(); }
  [[nodiscard]] const std::byte* end() const { return data() + size_; }

  [[nodiscard]] std::byte operator[](std::size_t index) const {
    return data()[index];
  }

  /// Copies the viewed bytes out into host memory (explicit copy point).
  [[nodiscard]] std::vector<std::byte> to_vector() const {
    return std::vector<std::byte>(begin(), end());
  }

  /// True when both views share one block — the zero-copy assertion used
  /// by tests (content equality is operator==).
  [[nodiscard]] bool shares_block_with(const Buffer& other) const {
    return block_ != nullptr && block_ == other.block_;
  }

  /// Live references to this view's block (0 for the empty view).  Test
  /// observability only — by the time a caller acts on the value another
  /// shard may have changed it.
  [[nodiscard]] std::uint64_t block_ref_count() const {
    return block_ ? block_->refs.load(std::memory_order_relaxed) : 0;
  }

  /// Content equality (byte-wise over the viewed ranges).
  friend bool operator==(const Buffer& a, const Buffer& b) {
    if (a.size_ != b.size_) return false;
    if (a.size_ == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  struct Block {
    explicit Block(std::vector<std::byte>&& b) : bytes(std::move(b)) {}
    const std::vector<std::byte> bytes;
    std::atomic<std::uint64_t> refs{1};
  };

  Buffer(Block* block, std::size_t offset, std::size_t size)
      : block_(block), offset_(offset), size_(size) {}

  static void acquire(Block* block) {
    if (block != nullptr) {
      // Relaxed: the caller already holds a reference, so the count can't
      // hit zero concurrently with this increment.
      block->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  static void release(Block* block) {
    if (block != nullptr &&
        block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete block;
    }
  }

  Block* block_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nicmcast::net

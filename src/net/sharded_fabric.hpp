// NIC-timing-faithful experiment fabric on the sharded PDES engine.
//
// The coroutine-based gm::Cluster stack is single-threaded by construction
// (shared closures, one global Network); what runs sharded is the
// packet-level behaviour of the paper's experiment families — NIC-based
// multicast, flat multisend, MPI-style bcast, the NIC tree barrier and the
// process-skew bcast — with injection/forward/ack/retransmit timing from
// nic::NicConfig, wormhole link contention from net::NetworkConfig and
// per-edge Go-back-N, expressed as shard-local state so the fabric
// parallelises:
//
//   - every tree node, link, and per-edge ARQ record is owned by exactly
//     one shard (net::switch_cut), and only that shard's worker touches it;
//   - packets crossing a shard boundary become ShardedEngine::post calls,
//     legal because every hand-off lies at least one hop_latency ahead;
//   - wormhole cut-through is computed per owner-maximal route segment: at
//     shards=1 the single segment reproduces Network::transmit's formula
//     bit-for-bit, at shards>1 a stalled boundary simply does not
//     retro-extend upstream reservations (a slightly optimistic upstream
//     release; DESIGN.md §4.5);
//   - loss is decided by a counter hash of (seed, edge, iter, attempt) and
//     applied at the receiver like a CRC drop, so drop/retransmit counts —
//     and therefore total deliveries — are invariant across shard counts.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "nic/config.hpp"
#include "nic/packet_descriptor.hpp"
#include "nic/types.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/thread_annotations.hpp"
#include "sim/time.hpp"

namespace nicmcast::net {

/// A multicast spanning tree in flat arrays (65536 endpoints = 128k ids;
/// the unordered_map-based mcast::Tree is for protocol code, this is for
/// the data path).  Child order is meaningful: replicas to children are
/// serialised in this order, exactly like the GM send-record chain.
struct FabricTree {
  static constexpr NodeId kNoParent = std::numeric_limits<NodeId>::max();

  NodeId root = 0;
  std::vector<NodeId> parent;           // kNoParent at the root
  std::vector<std::uint32_t> child_off; // node -> first child; size n+1
  std::vector<NodeId> children;         // flattened child lists

  [[nodiscard]] std::size_t size() const { return parent.size(); }
  [[nodiscard]] std::size_t child_count(NodeId n) const {
    return child_off[n + 1u] - child_off[n];
  }
  [[nodiscard]] NodeId child(NodeId n, std::size_t slot) const {
    return children[child_off[n] + slot];
  }
};

/// Which experiment family the fabric runs.  All families share the
/// shard-local link/route/descriptor machinery; they differ in who sends,
/// what completion means, and which metrics the controller collects.
enum class FabricWorkload : std::uint8_t {
  /// Root multicasts down the tree each iteration; NICs forward; latency
  /// is the last host delivery (the original PR 6 fabric — its event
  /// schedule is pinned by goldens and must not change).
  kMcast,
  /// Flat NIC-based multisend: the tree must be a star (every endpoint a
  /// direct child of the root).  Completion is sender-side — the last
  /// Go-back-N ack landing back at the root, plus host event delivery —
  /// exactly what the paper's Figure 3 measures.
  kMultisend,
  /// MPI_Bcast over the NIC multicast: kMcast plus a host-entry overhead
  /// per delivery (the MPI decode/matching cost on top of the GM event).
  kBcast,
  /// NIC tree barrier: arrive packets combine up the tree, a release
  /// wave fans back down; rounds chain through the tree itself.  Control
  /// packets only — requires loss_rate == 0.  avg_skew_us staggers each
  /// node's per-round arrival.
  kBarrier,
  /// kBcast under process skew: each rank enters the bcast avg_skew_us
  /// late on average (deterministic per (iter, rank)); the NIC data path
  /// is oblivious — only host-side completion shifts, which is the
  /// paper's headline flat-curve result.
  kSkewBcast,
};

[[nodiscard]] constexpr const char* to_string(FabricWorkload w) {
  switch (w) {
    case FabricWorkload::kMcast: return "mcast";
    case FabricWorkload::kMultisend: return "multisend";
    case FabricWorkload::kBcast: return "bcast";
    case FabricWorkload::kBarrier: return "barrier";
    case FabricWorkload::kSkewBcast: return "skew_bcast";
  }
  return "?";
}

struct FabricOptions {
  FabricWorkload workload = FabricWorkload::kMcast;
  std::size_t message_bytes = 512;
  int warmup = 1;
  int iterations = 2;
  double loss_rate = 0.0;
  /// Mean process skew (kBarrier, kSkewBcast): each node's per-iteration
  /// entry is delayed uniformly in [0, 2 * avg_skew_us), derived from a
  /// counter hash of (seed, iter, node) so it is shard-count invariant.
  double avg_skew_us = 0.0;
  /// Host-side MPI entry cost added to every kBcast/kSkewBcast delivery.
  sim::Duration host_entry_overhead = sim::usec(1.0);
  /// Opt into the engine's batched per-shard horizons (fewer LBTS rounds;
  /// different event seq assignment, so goldens pin per mode).
  bool batch_horizons = false;
  /// Opt into the engine's asynchronous null-message synchronization
  /// (ShardedEngine::enable_async_sync).  Same round schedule and the
  /// same per-shard hash vectors as the barrier default — only the
  /// waiting changes — so the sync axis is never part of a golden key.
  bool async_sync = false;
  std::uint64_t seed = 1;
  nic::NicConfig nic;
  NetworkConfig net;
};

/// Everything the harness folds into a RunResult.
struct FabricResult {
  std::vector<double> latency_us;          // timed iterations only
  nic::NicStats nic_totals;
  std::uint64_t deliveries = 0;            // first deliveries, all iters

  // kSkewBcast host-side metrics (timed iterations, receivers only).
  double avg_bcast_cpu_us = 0.0;   // mean (completion - ready) per rank
  double max_bcast_cpu_us = 0.0;   // worst rank
  double avg_applied_skew_us = 0.0;

  // Engine counters, aggregated over shards.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t heap_actions = 0;
  std::uint64_t pool_slots = 0;
  std::uint64_t wheel_cascades = 0;
  std::uint64_t overflow_scheduled = 0;
  std::uint64_t overflow_promotions = 0;
  std::uint64_t routes_materialized = 0;
  std::uint64_t route_links_stored = 0;
  std::uint64_t route_links_shared = 0;

  // Shard-boundary counters (the new observability surface).
  std::uint64_t cross_shard_msgs = 0;
  std::uint64_t lbts_rounds = 0;
  std::uint64_t horizon_stalls = 0;
  std::uint64_t channel_spills = 0;
  std::uint64_t cross_links = 0;
  // Async-sync counters, aggregated over shards (zero in barrier mode).
  std::uint64_t null_msgs_sent = 0;
  std::uint64_t null_msgs_demanded = 0;
  std::uint64_t eot_advances = 0;
  std::uint64_t blocked_waits = 0;
  std::vector<std::uint64_t> shard_order_hashes;
  std::vector<std::uint64_t> shard_wheel_occupancy_peak;
  std::uint64_t merged_order_hash = 0;
};

class ShardedFabric {
 public:
  ShardedFabric(Topology topology, FabricTree tree, FabricOptions options,
                std::size_t shards);

  /// Runs warmup + timed iterations to completion and collects the result.
  /// Deterministic for a fixed (options, shards); throws when any edge
  /// exhausts nic.max_retries.
  FabricResult run();

 private:
  struct ShardState {
    explicit ShardState(const Topology& topology) : routes(topology) {}
    RouteTable routes;            // per-shard lazy cache over the topology
    nic::DescriptorPool pool;     // shard-local descriptor recycling
    nic::NicStats nic;
    std::uint64_t deliveries = 0;
  };

  /// Go-back-N record for the tree edge parent->child, stored at the
  /// child's index and owned by the parent's shard.
  struct EdgeState {
    sim::EventId timer{};
    std::uint32_t attempt = 0;
    std::int32_t iter = -1;
    bool timer_armed = false;
  };

  [[nodiscard]] std::uint32_t shard_of(NodeId n) const {
    return partition_.vertex_shard[n];
  }
  [[nodiscard]] sim::Simulator& sim_of(std::uint32_t shard) {
    return engine_->shard(shard);
  }
  [[nodiscard]] bool dropped(NodeId child, std::int32_t iter,
                             std::uint32_t attempt) const;
  /// Deterministic per-(iter, node) process skew, uniform in
  /// [0, 2 * avg_skew_us) — shard-count invariant by construction.
  [[nodiscard]] sim::Duration skew_of(std::int32_t iter, NodeId node) const;

  void start_iteration(std::int32_t iter) NM_REQUIRES(controller_role_);
  /// Injects the data train for edge parent->child at `inject` (an absolute
  /// time on the parent's shard clock) and arms the retransmit timer.
  void send_data(NodeId from, NodeId to, std::int32_t iter,
                 std::uint32_t attempt, sim::TimePoint inject);
  /// Wormhole traversal of the owner-maximal route segment starting at
  /// link index `seg`, with virtual injection instant `inject`.  `owner`
  /// is the executing shard (= link_owner of route link `seg`); it is
  /// passed in because deriving it would need a route lookup in some other
  /// shard's table.
  void continue_segment(std::uint32_t owner, NodeId from, NodeId to,
                        std::size_t seg, sim::TimePoint inject,
                        std::int32_t iter, std::uint32_t attempt);
  void deliver(NodeId from, NodeId to, std::int32_t iter,
               std::uint32_t attempt, Buffer payload);
  void send_ack(NodeId from, NodeId to, std::int32_t iter);
  void ack_arrived(NodeId parent, NodeId child, std::int32_t iter);
  void retransmit(NodeId from, NodeId to, std::int32_t iter);
  void notify_controller(NodeId node, sim::TimePoint host_time)
      NM_REQUIRES(controller_role_);
  /// kMultisend: one more root->child ack landed; executes on the root's
  /// shard (the star tree makes every ack's parent the root).
  void multisend_ack_completed(std::int32_t iter)
      NM_REQUIRES(controller_role_);

  // -- kBarrier (control packets up/down the tree; rounds self-chain) --
  /// The node's own entry into round `round` (after its skew delay).
  void barrier_ready(NodeId node, std::int32_t round);
  /// An arrive packet from `child` landed at `node` for `round`.
  void barrier_child_arrived(NodeId node, std::int32_t round);
  /// Sends the combined arrive up (or releases, at the root) once the
  /// node itself is ready and every child has arrived.
  void barrier_try_send_up(NodeId node);
  /// Release wave: host completion, fan out to children, arm next round.
  void barrier_release(NodeId node, std::int32_t round);
  /// Bypass-path control-packet arrival time from `from` to `to`.
  [[nodiscard]] sim::TimePoint ctrl_packet_arrival(std::uint32_t me,
                                                   NodeId from, NodeId to);

  [[nodiscard]] std::size_t packets_per_message() const;
  [[nodiscard]] std::size_t train_wire_bytes() const;

  Topology topology_;
  FabricTree tree_;
  FabricOptions options_;
  FabricPartition partition_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  // The one message block every delivery slices (GM zero-copy): slices of
  // it cross shard boundaries inside posted closures, which is exactly the
  // traffic the atomic Buffer refcount exists for.
  Buffer payload_;

  // Node/link state: every element is touched by exactly one shard's
  // worker (the owner), which is what makes the fabric race-free.
  std::vector<sim::TimePoint> link_free_;     // owner(link) only
  std::vector<std::int32_t> received_iter_;   // owner(node) only
  std::vector<EdgeState> edges_;              // owner(parent(node)) only

  // kBarrier per-node state, owner(node) only.  `round` is the round the
  // node is currently collecting; arrivals/self_ready reset on release.
  std::vector<std::uint32_t> barrier_arrivals_;
  std::vector<std::uint8_t> barrier_self_ready_;
  std::vector<std::int32_t> barrier_round_;

  // Controller state: root's shard only.  The phantom controller role
  // (thread_annotations.hpp) makes that ownership checkable — closures
  // posted to the root's shard assert it, run() claims it before the
  // workers start and after they join, and any new code path touching
  // these members without either is a -Wthread-safety error in Clang CI.
  sim::Role controller_role_;
  std::int32_t ctrl_iter_ NM_GUARDED_BY(controller_role_) = 0;
  std::size_t ctrl_remaining_ NM_GUARDED_BY(controller_role_) = 0;
  sim::TimePoint ctrl_iter_start_ NM_GUARDED_BY(controller_role_){0};
  sim::TimePoint ctrl_last_delivery_ NM_GUARDED_BY(controller_role_){0};
  std::vector<double> latency_us_ NM_GUARDED_BY(controller_role_);

  // kSkewBcast host-side accumulators (root's shard only; timed iters).
  double ctrl_cpu_sum_us_ NM_GUARDED_BY(controller_role_) = 0.0;
  double ctrl_cpu_max_us_ NM_GUARDED_BY(controller_role_) = 0.0;
  double ctrl_skew_sum_us_ NM_GUARDED_BY(controller_role_) = 0.0;
  std::uint64_t ctrl_cpu_count_ NM_GUARDED_BY(controller_role_) = 0;
};

}  // namespace nicmcast::net

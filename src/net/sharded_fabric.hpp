// NIC-timing-faithful multicast fabric on the sharded PDES engine.
//
// The coroutine-based gm::Cluster stack is deeply single-threaded (shared
// closures, non-atomic payload refcounts, one global Network); migrating it
// wholesale is ROADMAP follow-up work.  What the 16k–65k-endpoint sweeps
// need today is the packet-level behaviour of the NIC-based multicast —
// injection/forward/ack/retransmit timing from nic::NicConfig, wormhole
// link contention from net::NetworkConfig, per-edge Go-back-N — expressed
// as shard-local state so the fabric parallelises:
//
//   - every tree node, link, and per-edge ARQ record is owned by exactly
//     one shard (net::switch_cut), and only that shard's worker touches it;
//   - packets crossing a shard boundary become ShardedEngine::post calls,
//     legal because every hand-off lies at least one hop_latency ahead;
//   - wormhole cut-through is computed per owner-maximal route segment: at
//     shards=1 the single segment reproduces Network::transmit's formula
//     bit-for-bit, at shards>1 a stalled boundary simply does not
//     retro-extend upstream reservations (a slightly optimistic upstream
//     release; DESIGN.md §4.5);
//   - loss is decided by a counter hash of (seed, edge, iter, attempt) and
//     applied at the receiver like a CRC drop, so drop/retransmit counts —
//     and therefore total deliveries — are invariant across shard counts.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "nic/config.hpp"
#include "nic/packet_descriptor.hpp"
#include "nic/types.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace nicmcast::net {

/// A multicast spanning tree in flat arrays (65536 endpoints = 128k ids;
/// the unordered_map-based mcast::Tree is for protocol code, this is for
/// the data path).  Child order is meaningful: replicas to children are
/// serialised in this order, exactly like the GM send-record chain.
struct FabricTree {
  static constexpr NodeId kNoParent = std::numeric_limits<NodeId>::max();

  NodeId root = 0;
  std::vector<NodeId> parent;           // kNoParent at the root
  std::vector<std::uint32_t> child_off; // node -> first child; size n+1
  std::vector<NodeId> children;         // flattened child lists

  [[nodiscard]] std::size_t size() const { return parent.size(); }
  [[nodiscard]] std::size_t child_count(NodeId n) const {
    return child_off[n + 1u] - child_off[n];
  }
  [[nodiscard]] NodeId child(NodeId n, std::size_t slot) const {
    return children[child_off[n] + slot];
  }
};

struct FabricOptions {
  std::size_t message_bytes = 512;
  int warmup = 1;
  int iterations = 2;
  double loss_rate = 0.0;
  std::uint64_t seed = 1;
  nic::NicConfig nic;
  NetworkConfig net;
};

/// Everything the harness folds into a RunResult.
struct FabricResult {
  std::vector<double> latency_us;          // timed iterations only
  nic::NicStats nic_totals;
  std::uint64_t deliveries = 0;            // first deliveries, all iters

  // Engine counters, aggregated over shards.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t heap_actions = 0;
  std::uint64_t pool_slots = 0;
  std::uint64_t wheel_cascades = 0;
  std::uint64_t overflow_scheduled = 0;
  std::uint64_t overflow_promotions = 0;
  std::uint64_t routes_materialized = 0;
  std::uint64_t route_links_stored = 0;
  std::uint64_t route_links_shared = 0;

  // Shard-boundary counters (the new observability surface).
  std::uint64_t cross_shard_msgs = 0;
  std::uint64_t lbts_rounds = 0;
  std::uint64_t horizon_stalls = 0;
  std::uint64_t channel_spills = 0;
  std::uint64_t cross_links = 0;
  std::vector<std::uint64_t> shard_order_hashes;
  std::vector<std::uint64_t> shard_wheel_occupancy_peak;
  std::uint64_t merged_order_hash = 0;
};

class ShardedFabric {
 public:
  ShardedFabric(Topology topology, FabricTree tree, FabricOptions options,
                std::size_t shards);

  /// Runs warmup + timed iterations to completion and collects the result.
  /// Deterministic for a fixed (options, shards); throws when any edge
  /// exhausts nic.max_retries.
  FabricResult run();

 private:
  struct ShardState {
    explicit ShardState(const Topology& topology) : routes(topology) {}
    RouteTable routes;            // per-shard lazy cache over the topology
    nic::DescriptorPool pool;     // shard-local descriptor recycling
    nic::NicStats nic;
    std::uint64_t deliveries = 0;
  };

  /// Go-back-N record for the tree edge parent->child, stored at the
  /// child's index and owned by the parent's shard.
  struct EdgeState {
    sim::EventId timer{};
    std::uint32_t attempt = 0;
    std::int32_t iter = -1;
    bool timer_armed = false;
  };

  [[nodiscard]] std::uint32_t shard_of(NodeId n) const {
    return partition_.vertex_shard[n];
  }
  [[nodiscard]] sim::Simulator& sim_of(std::uint32_t shard) {
    return engine_->shard(shard);
  }
  [[nodiscard]] bool dropped(NodeId child, std::int32_t iter,
                             std::uint32_t attempt) const;

  void start_iteration(std::int32_t iter);
  /// Injects the data train for edge parent->child at `inject` (an absolute
  /// time on the parent's shard clock) and arms the retransmit timer.
  void send_data(NodeId from, NodeId to, std::int32_t iter,
                 std::uint32_t attempt, sim::TimePoint inject);
  /// Wormhole traversal of the owner-maximal route segment starting at
  /// link index `seg`, with virtual injection instant `inject`.  `owner`
  /// is the executing shard (= link_owner of route link `seg`); it is
  /// passed in because deriving it would need a route lookup in some other
  /// shard's table.
  void continue_segment(std::uint32_t owner, NodeId from, NodeId to,
                        std::size_t seg, sim::TimePoint inject,
                        std::int32_t iter, std::uint32_t attempt);
  void deliver(NodeId from, NodeId to, std::int32_t iter,
               std::uint32_t attempt);
  void send_ack(NodeId from, NodeId to, std::int32_t iter);
  void ack_arrived(NodeId parent, NodeId child, std::int32_t iter);
  void retransmit(NodeId from, NodeId to, std::int32_t iter);
  void notify_controller(sim::TimePoint host_time);

  [[nodiscard]] std::size_t packets_per_message() const;
  [[nodiscard]] std::size_t train_wire_bytes() const;

  Topology topology_;
  FabricTree tree_;
  FabricOptions options_;
  FabricPartition partition_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  // Node/link state: every element is touched by exactly one shard's
  // worker (the owner), which is what makes the fabric race-free.
  std::vector<sim::TimePoint> link_free_;     // owner(link) only
  std::vector<std::int32_t> received_iter_;   // owner(node) only
  std::vector<EdgeState> edges_;              // owner(parent(node)) only

  // Controller state: root's shard only.
  std::int32_t ctrl_iter_ = 0;
  std::size_t ctrl_remaining_ = 0;
  sim::TimePoint ctrl_iter_start_{0};
  sim::TimePoint ctrl_last_delivery_{0};
  std::vector<double> latency_us_;
  std::uint64_t total_deliveries_ = 0;
};

}  // namespace nicmcast::net

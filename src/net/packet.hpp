// Network packet representation.
//
// Models a Myrinet/GM packet: a source route (implicit — we precompute
// paths), a GM-style header and up to gm::kMaxPacketPayload bytes of data.
// Payload bytes are carried for real so end-to-end tests can verify content
// integrity through retransmissions and NIC-level forwarding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/buffer.hpp"

namespace nicmcast::net {

/// Network id of a NIC endpoint.  The deadlock-avoidance rule in the
/// multicast tree construction ("child id > parent id unless parent is the
/// root") is expressed in terms of this id.
///
/// 32-bit so fabrics beyond 65536 endpoints are expressible (the sharded
/// PDES sweep runs them); `Topology` rejects endpoint counts that the id
/// width cannot address.  Wire formats that still serialise 16-bit ids
/// (the MPI group-setup payload) guard against truncation at encode time.
using NodeId = std::uint32_t;

/// A communication endpoint within a node (GM port).
using PortId = std::uint8_t;

/// Multicast group identifier (paper §5: "each multicast group has a unique
/// group identifier").
using GroupId = std::uint32_t;

constexpr GroupId kNoGroup = 0;

enum class PacketType : std::uint8_t {
  kData,       // point-to-point GM data packet
  kAck,        // acknowledgment (positive, cumulative per port/group)
  kMcastData,  // multicast data packet (NIC-forwarded along the tree)
  kMcastAck,   // child -> parent multicast acknowledgment
  kCtrl,       // control (group-table update, rendezvous handshake)
  kBarrier,    // NIC-level barrier: arrive (up) / release (down)
  kReduce,     // NIC-level reduction: combined contribution (up)
  kReduceAck,  // parent -> child: contribution absorbed
};

[[nodiscard]] constexpr const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
    case PacketType::kMcastData: return "MCAST";
    case PacketType::kMcastAck: return "MACK";
    case PacketType::kCtrl: return "CTRL";
    case PacketType::kBarrier: return "BARR";
    case PacketType::kReduce: return "REDU";
    case PacketType::kReduceAck: return "RACK";
  }
  return "?";
}

struct PacketHeader {
  PacketType type = PacketType::kData;
  NodeId src = 0;
  NodeId dst = 0;
  PortId src_port = 0;
  PortId dst_port = 0;
  /// Per-(port|group) packet sequence number (Go-back-N space).
  std::uint32_t seq = 0;
  /// Multicast group, kNoGroup for point-to-point traffic.
  GroupId group = kNoGroup;
  /// Byte offset of this packet's payload within the whole message.
  std::uint32_t msg_offset = 0;
  /// Total message length in bytes (so the receiver can detect completion).
  std::uint32_t msg_length = 0;
  /// Sender-chosen message tag; carried to the receive event (GM has a
  /// small "tag"/size field; the MPI layer uses it for matching).
  std::uint32_t tag = 0;
};

struct Packet {
  PacketHeader header;
  /// Immutable shared view of (a fragment of) the message bytes.  Copying
  /// a Packet shares the block — forwarding, retransmission and transit
  /// never duplicate payload bytes (see net/buffer.hpp).
  Buffer payload;
  /// Set by the fault injector; the receiving NIC's CRC check drops the
  /// packet without acknowledging it.  Kept outside the payload on purpose:
  /// corruption flips this flag, it must never mutate shared bytes.
  bool corrupted = false;

  [[nodiscard]] std::size_t payload_size() const { return payload.size(); }

  /// Bytes that occupy the wire: route/header/CRC framing plus payload.
  [[nodiscard]] std::size_t wire_size(std::size_t framing_bytes) const {
    return framing_bytes + payload.size();
  }

  [[nodiscard]] std::string describe() const {
    // Plain appends, not operator+ chains: GCC 12's -Wrestrict false-fires
    // on `const char* + std::string&&` once std::to_string takes the
    // 32-bit NodeId overload.
    std::string s(to_string(header.type));
    s += ' ';
    s += std::to_string(header.src);
    s += "->";
    s += std::to_string(header.dst);
    s += " seq=";
    s += std::to_string(header.seq);
    if (header.group != kNoGroup) {
      s += " grp=";
      s += std::to_string(header.group);
    }
    s += " off=";
    s += std::to_string(header.msg_offset);
    s += " len=";
    s += std::to_string(payload.size());
    return s;
  }
};

}  // namespace nicmcast::net

// Switch-granularity topology partitioning for the sharded PDES engine.
//
// The Clos is cut at switch boundaries: every switch (and the endpoints
// cabled to it) is assigned to exactly one shard, and every link is owned
// by the shard of its source vertex.  Because each endpoint's first route
// link leaves the endpoint itself, a packet always starts on its source's
// shard, and every shard hand-off happens at least one `hop_latency` after
// the previous shard touched the packet — which is exactly why
// `lookahead = hop_latency` is a valid conservative bound (see DESIGN.md
// §4.5 for the derivation).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace nicmcast::net {

struct FabricPartition {
  std::size_t shards = 1;
  /// Shard of every vertex (endpoints and switches share the id space).
  std::vector<std::uint32_t> vertex_shard;
  /// Shard owning each unidirectional link: vertex_shard[link.from].
  std::vector<std::uint32_t> link_owner;
  /// Links whose endpoints live on different shards.
  std::uint64_t cross_links = 0;
  /// Conservative synchronization window: the minimum latency any packet
  /// needs to cross a shard boundary.
  sim::Duration lookahead{0};
  /// Per-ordered-pair channel lookahead, row-major [from * shards + to]:
  /// the minimum latency over the cut links leaving shard `from` for shard
  /// `to`.  Pairs joined by no direct cut link fall back to the global
  /// `lookahead` — the fabric also posts controller notifications between
  /// arbitrary shard pairs at exactly `now + lookahead`, so no channel may
  /// promise more than the global floor unless a direct link justifies it.
  /// The async sync mode stamps each channel's EOT nulls with its entry
  /// (sim::ShardedEngine::set_channel_lookahead).  Every entry is >= the
  /// global `lookahead`; the diagonal is unused.
  std::vector<sim::Duration> channel_lookahead;

  [[nodiscard]] std::uint32_t shard_of_endpoint(NodeId node) const {
    return vertex_shard[node];
  }

  /// The channel lookahead of the ordered shard pair from → to.
  [[nodiscard]] sim::Duration channel_lookahead_of(std::size_t from,
                                                   std::size_t to) const {
    return channel_lookahead[from * shards + to];
  }
};

/// Cuts `topology` into `shards` parts at switch granularity.
///
/// Leaf switches (those with at least one endpoint neighbour) are dealt
/// round-robin in contiguous blocks — leaf i goes to shard i*S/L — so a
/// Clos leaf and all its endpoints stay together and most tree edges in a
/// leaf-local subtree never cross a shard.  Spine switches are spread the
/// same way.  Endpoints inherit the shard of their lowest-id neighbouring
/// switch; in switchless (back-to-back) topologies they fall back to
/// node_id % shards.
///
/// `shards` is clamped to the number of leaf blocks (endpoint count for
/// switchless wirings): requesting more would leave shards that own no
/// endpoints, spinning through LBTS rounds for nothing.  Check the
/// returned partition's `shards` for the effective count.
[[nodiscard]] FabricPartition switch_cut(const Topology& topology,
                                         std::size_t shards,
                                         const NetworkConfig& config = {});

}  // namespace nicmcast::net

#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace nicmcast::net {

namespace {
constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();
constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();
}  // namespace

Route Topology::route(NodeId from, NodeId to) const {
  if (from >= endpoint_count_ || to >= endpoint_count_) {
    throw std::out_of_range("route: endpoint id out of range");
  }
  if (from == to) return {};

  // BFS over vertices; packets may not pass *through* an endpoint vertex
  // (NICs do not cut through), so intermediate hops must be switches.
  std::vector<LinkId> via(vertex_count_, kNoLink);
  std::vector<VertexId> prev(vertex_count_, kNoVertex);
  std::queue<VertexId> frontier;
  frontier.push(from);
  prev[from] = from;

  while (!frontier.empty() && prev[to] == kNoVertex) {
    const VertexId v = frontier.front();
    frontier.pop();
    if (v != from && is_endpoint(v)) continue;  // endpoints terminate paths
    for (LinkId id = 0; id < links_.size(); ++id) {
      const LinkDesc& l = links_[id];
      if (l.from != v || prev[l.to] != kNoVertex) continue;
      prev[l.to] = v;
      via[l.to] = id;
      frontier.push(l.to);
    }
  }

  if (prev[to] == kNoVertex) {
    throw std::runtime_error("no route between endpoints " +
                             std::to_string(from) + " and " +
                             std::to_string(to));
  }

  Route path;
  for (VertexId v = to; v != from; v = prev[v]) {
    path.push_back(via[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<Route>> Topology::all_routes() const {
  // One full BFS per *source* instead of one per pair: the BFS exploration
  // order is deterministic, so the predecessor tree — and every extracted
  // route — is bit-identical to what per-pair route() calls produce, at
  // 1/endpoint_count the cost.  Cluster construction runs this for every
  // simulated network, so it is on the benchmark setup path.
  std::vector<std::vector<LinkId>> adjacency(vertex_count_);
  for (LinkId id = 0; id < links_.size(); ++id) {
    // Links appended in id order keep each vertex's out-links in increasing
    // id order — the same order the per-pair BFS discovers them in.
    adjacency[links_[id].from].push_back(id);
  }

  std::vector<std::vector<Route>> out(endpoint_count_);
  std::vector<LinkId> via(vertex_count_);
  std::vector<VertexId> prev(vertex_count_);
  for (NodeId from = 0; from < endpoint_count_; ++from) {
    std::fill(via.begin(), via.end(), kNoLink);
    std::fill(prev.begin(), prev.end(), kNoVertex);
    std::queue<VertexId> frontier;
    frontier.push(from);
    prev[from] = from;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      if (v != from && is_endpoint(v)) continue;  // endpoints terminate paths
      for (const LinkId id : adjacency[v]) {
        const LinkDesc& l = links_[id];
        if (prev[l.to] != kNoVertex) continue;
        prev[l.to] = v;
        via[l.to] = id;
        frontier.push(l.to);
      }
    }

    out[from].resize(endpoint_count_);
    for (NodeId to = 0; to < endpoint_count_; ++to) {
      if (to == from) continue;
      if (prev[to] == kNoVertex) {
        throw std::runtime_error("no route between endpoints " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
      }
      Route& path = out[from][to];
      for (VertexId v = to; v != from; v = prev[v]) {
        path.push_back(via[v]);
      }
      std::reverse(path.begin(), path.end());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RouteTable

/// (Re)starts the incremental BFS for `from`: resets the predecessor tree
/// and seeds the frontier.  Exploration happens in extend_bfs().
void RouteTable::start_bfs(NodeId from) {
  const std::size_t vertices = topo_->vertex_count();
  if (adjacency_.empty()) {
    // Built once and shared by every source.  Links appended in id order
    // keep each vertex's out-links in increasing id order — the same order
    // Topology::route()'s per-pair BFS discovers them in, which is what
    // keeps extracted routes bit-identical to the eager implementation's.
    adjacency_.resize(vertices);
    for (LinkId id = 0; id < topo_->link_count(); ++id) {
      adjacency_[topo_->link(id).from].push_back(id);
    }
  }
  via_.assign(vertices, kNoLink);
  prev_.assign(vertices, kNoVertex);
  frontier_.clear();
  frontier_head_ = 0;
  frontier_.push_back(from);
  prev_[from] = from;
  bfs_source_ = from;
  bfs_valid_ = true;
}

/// Runs the BFS just far enough to discover `to`.  The frontier persists
/// between calls, so later destinations for the same source continue where
/// the last call stopped — the FIFO discovery order (and thus every
/// extracted route) is identical to a single uninterrupted BFS.
void RouteTable::extend_bfs(NodeId to) {
  while (prev_[to] == kNoVertex && frontier_head_ < frontier_.size()) {
    const VertexId v = frontier_[frontier_head_++];
    if (v != bfs_source_ && topo_->is_endpoint(v)) {
      continue;  // endpoints terminate paths (NICs do not cut through)
    }
    for (const LinkId id : adjacency_[v]) {
      const LinkDesc& l = topo_->link(id);
      if (prev_[l.to] != kNoVertex) continue;
      prev_[l.to] = v;
      via_[l.to] = id;
      frontier_.push_back(l.to);
    }
  }
  if (prev_[to] == kNoVertex) {
    throw std::runtime_error("no route between endpoints " +
                             std::to_string(bfs_source_) + " and " +
                             std::to_string(to));
  }
}

RouteView RouteTable::route(NodeId from, NodeId to) {
  if (from >= topo_->endpoint_count() || to >= topo_->endpoint_count()) {
    throw std::out_of_range("route: endpoint id out of range");
  }
  if (from == to) return {};
  if (sources_.empty()) sources_.resize(topo_->endpoint_count());
  auto& sp = sources_[from];
  if (!sp) {
    sp = std::make_unique<SourceRoutes>();
    ++stats_.sources_touched;
  }
  const auto it = sp->by_dst.find(to);
  if (it != sp->by_dst.end()) return view_of(*sp, it->second);
  return materialize(from, to, *sp);
}

RouteView RouteTable::materialize(NodeId from, NodeId to, SourceRoutes& sr) {
  if (!bfs_valid_ || bfs_source_ != from) start_bfs(from);
  extend_bfs(to);

  // Walk the predecessor chain to -> from.
  std::vector<VertexId> vertices;  // from ... to
  std::vector<LinkId> links;       // links[i] enters vertices[i+1]
  for (VertexId v = to; v != from; v = prev_[v]) {
    vertices.push_back(v);
    links.push_back(via_[v]);
  }
  vertices.push_back(from);
  std::reverse(vertices.begin(), vertices.end());
  std::reverse(links.begin(), links.end());
  const std::size_t hops = links.size();

  // Longest interned prefix: the deepest on-path switch whose route from
  // this source is already in the arena.  Every destination behind the same
  // last switch shares that span.
  Entry entry;
  std::size_t shared = 0;  // links covered by the interned head
  for (std::size_t j = hops; j-- > 1;) {
    const auto hit = sr.prefix_of.find(vertices[j]);
    if (hit != sr.prefix_of.end()) {
      entry.head = hit->second;
      shared = j;
      break;
    }
  }

  entry.tail.off = static_cast<std::uint32_t>(sr.arena.size());
  entry.tail.len = static_cast<std::uint32_t>(hops - shared);
  for (std::size_t i = shared; i < hops; ++i) sr.arena.push_back(links[i]);
  stats_.links_stored += hops - shared;
  stats_.links_shared += shared;

  if (shared == 0) {
    // The whole route is contiguous: intern every proper prefix ending at a
    // switch so later destinations behind those switches can share it.
    for (std::size_t j = 1; j < hops; ++j) {
      sr.prefix_of.emplace(vertices[j],
                           Span{entry.tail.off, static_cast<std::uint32_t>(j)});
    }
  }

  ++stats_.routes_materialized;
  const auto [pos, inserted] = sr.by_dst.emplace(to, entry);
  (void)inserted;
  return view_of(sr, pos->second);
}

Topology Topology::single_switch(std::size_t n) {
  Topology t(n);
  const VertexId sw = t.add_switch();
  for (VertexId e = 0; e < n; ++e) {
    t.add_cable(e, sw);
  }
  return t;
}

Topology Topology::clos(std::size_t n, std::size_t radix) {
  if (radix < 2 || radix % 2 != 0) {
    throw std::invalid_argument("clos: radix must be even and >= 2");
  }
  if (n <= radix) return single_switch(n);

  const std::size_t per_leaf = radix / 2;
  const std::size_t leaves = (n + per_leaf - 1) / per_leaf;
  const std::size_t spines = radix / 2;

  Topology t(n);
  std::vector<VertexId> leaf_ids;
  std::vector<VertexId> spine_ids;
  leaf_ids.reserve(leaves);
  spine_ids.reserve(spines);
  for (std::size_t i = 0; i < leaves; ++i) leaf_ids.push_back(t.add_switch());
  for (std::size_t i = 0; i < spines; ++i) spine_ids.push_back(t.add_switch());

  for (VertexId e = 0; e < n; ++e) {
    t.add_cable(e, leaf_ids[e / per_leaf]);
  }
  for (VertexId leaf : leaf_ids) {
    for (VertexId spine : spine_ids) {
      t.add_cable(leaf, spine);
    }
  }
  return t;
}

Topology Topology::back_to_back() {
  Topology t(2);
  t.add_cable(0, 1);
  return t;
}

}  // namespace nicmcast::net

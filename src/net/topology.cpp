#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace nicmcast::net {

namespace {
constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();
constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();
}  // namespace

Route Topology::route(NodeId from, NodeId to) const {
  if (from >= endpoint_count_ || to >= endpoint_count_) {
    throw std::out_of_range("route: endpoint id out of range");
  }
  if (from == to) return {};

  // BFS over vertices; packets may not pass *through* an endpoint vertex
  // (NICs do not cut through), so intermediate hops must be switches.
  std::vector<LinkId> via(vertex_count_, kNoLink);
  std::vector<VertexId> prev(vertex_count_, kNoVertex);
  std::queue<VertexId> frontier;
  frontier.push(from);
  prev[from] = from;

  while (!frontier.empty() && prev[to] == kNoVertex) {
    const VertexId v = frontier.front();
    frontier.pop();
    if (v != from && is_endpoint(v)) continue;  // endpoints terminate paths
    for (LinkId id = 0; id < links_.size(); ++id) {
      const LinkDesc& l = links_[id];
      if (l.from != v || prev[l.to] != kNoVertex) continue;
      prev[l.to] = v;
      via[l.to] = id;
      frontier.push(l.to);
    }
  }

  if (prev[to] == kNoVertex) {
    throw std::runtime_error("no route between endpoints " +
                             std::to_string(from) + " and " +
                             std::to_string(to));
  }

  Route path;
  for (VertexId v = to; v != from; v = prev[v]) {
    path.push_back(via[v]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<Route>> Topology::all_routes() const {
  // One full BFS per *source* instead of one per pair: the BFS exploration
  // order is deterministic, so the predecessor tree — and every extracted
  // route — is bit-identical to what per-pair route() calls produce, at
  // 1/endpoint_count the cost.  Cluster construction runs this for every
  // simulated network, so it is on the benchmark setup path.
  std::vector<std::vector<LinkId>> adjacency(vertex_count_);
  for (LinkId id = 0; id < links_.size(); ++id) {
    // Links appended in id order keep each vertex's out-links in increasing
    // id order — the same order the per-pair BFS discovers them in.
    adjacency[links_[id].from].push_back(id);
  }

  std::vector<std::vector<Route>> out(endpoint_count_);
  std::vector<LinkId> via(vertex_count_);
  std::vector<VertexId> prev(vertex_count_);
  for (NodeId from = 0; from < endpoint_count_; ++from) {
    std::fill(via.begin(), via.end(), kNoLink);
    std::fill(prev.begin(), prev.end(), kNoVertex);
    std::queue<VertexId> frontier;
    frontier.push(from);
    prev[from] = from;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      if (v != from && is_endpoint(v)) continue;  // endpoints terminate paths
      for (const LinkId id : adjacency[v]) {
        const LinkDesc& l = links_[id];
        if (prev[l.to] != kNoVertex) continue;
        prev[l.to] = v;
        via[l.to] = id;
        frontier.push(l.to);
      }
    }

    out[from].resize(endpoint_count_);
    for (NodeId to = 0; to < endpoint_count_; ++to) {
      if (to == from) continue;
      if (prev[to] == kNoVertex) {
        throw std::runtime_error("no route between endpoints " +
                                 std::to_string(from) + " and " +
                                 std::to_string(to));
      }
      Route& path = out[from][to];
      for (VertexId v = to; v != from; v = prev[v]) {
        path.push_back(via[v]);
      }
      std::reverse(path.begin(), path.end());
    }
  }
  return out;
}

Topology Topology::single_switch(std::size_t n) {
  Topology t(n);
  const VertexId sw = t.add_switch();
  for (VertexId e = 0; e < n; ++e) {
    t.add_cable(e, sw);
  }
  return t;
}

Topology Topology::clos(std::size_t n, std::size_t radix) {
  if (radix < 2 || radix % 2 != 0) {
    throw std::invalid_argument("clos: radix must be even and >= 2");
  }
  if (n <= radix) return single_switch(n);

  const std::size_t per_leaf = radix / 2;
  const std::size_t leaves = (n + per_leaf - 1) / per_leaf;
  const std::size_t spines = radix / 2;

  Topology t(n);
  std::vector<VertexId> leaf_ids;
  std::vector<VertexId> spine_ids;
  leaf_ids.reserve(leaves);
  spine_ids.reserve(spines);
  for (std::size_t i = 0; i < leaves; ++i) leaf_ids.push_back(t.add_switch());
  for (std::size_t i = 0; i < spines; ++i) spine_ids.push_back(t.add_switch());

  for (VertexId e = 0; e < n; ++e) {
    t.add_cable(e, leaf_ids[e / per_leaf]);
  }
  for (VertexId leaf : leaf_ids) {
    for (VertexId spine : spine_ids) {
      t.add_cable(leaf, spine);
    }
  }
  return t;
}

Topology Topology::back_to_back() {
  Topology t(2);
  t.add_cable(0, 1);
  return t;
}

}  // namespace nicmcast::net

// Fault injection for the network channel.
//
// Real Myrinet has a nonzero bit-error rate (paper §2: "a network cannot be
// considered reliable"), which is exactly why the multicast scheme carries
// its own ack/timeout/retransmission machinery.  The injector decides, per
// packet, whether it traverses cleanly, is dropped in the fabric, or arrives
// corrupted (and is then discarded by the receiving NIC's CRC check).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"

namespace nicmcast::net {

enum class FaultAction : std::uint8_t { kNone, kDrop, kCorrupt };

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultAction on_packet(const Packet& packet) = 0;
};

/// The default: a perfect fabric.
class NoFaults final : public FaultInjector {
 public:
  FaultAction on_packet(const Packet&) override { return FaultAction::kNone; }
};

/// Independent per-packet drop/corrupt probabilities.
class RandomFaults final : public FaultInjector {
 public:
  RandomFaults(double drop_probability, double corrupt_probability,
               sim::Rng rng)
      : drop_p_(drop_probability), corrupt_p_(corrupt_probability),
        rng_(rng) {}

  FaultAction on_packet(const Packet&) override {
    const double u = rng_.uniform();
    if (u < drop_p_) return FaultAction::kDrop;
    if (u < drop_p_ + corrupt_p_) return FaultAction::kCorrupt;
    return FaultAction::kNone;
  }

 private:
  double drop_p_;
  double corrupt_p_;
  sim::Rng rng_;
};

/// Deterministic, test-oriented faults: match specific packets and apply an
/// action a bounded number of times.  Rules are evaluated in order; the
/// first live match wins.
class ScriptedFaults final : public FaultInjector {
 public:
  struct Match {
    std::optional<PacketType> type;
    std::optional<NodeId> src;
    std::optional<NodeId> dst;
    std::optional<std::uint32_t> seq;
    std::optional<GroupId> group;

    [[nodiscard]] bool matches(const Packet& p) const {
      const PacketHeader& h = p.header;
      return (!type || *type == h.type) && (!src || *src == h.src) &&
             (!dst || *dst == h.dst) && (!seq || *seq == h.seq) &&
             (!group || *group == h.group);
    }
  };

  /// Applies `action` to the first `count` packets matching `match`.
  void add_rule(Match match, FaultAction action, std::uint32_t count = 1) {
    rules_.push_back(Rule{match, action, count, nullptr});
  }

  /// Arbitrary-predicate rule for conditions Match cannot express.
  void add_predicate_rule(std::function<bool(const Packet&)> predicate,
                          FaultAction action, std::uint32_t count = 1) {
    rules_.push_back(Rule{Match{}, action, count, std::move(predicate)});
  }

  FaultAction on_packet(const Packet& p) override {
    for (Rule& rule : rules_) {
      if (rule.remaining == 0) continue;
      const bool hit =
          rule.predicate ? rule.predicate(p) : rule.match.matches(p);
      if (hit) {
        --rule.remaining;
        return rule.action;
      }
    }
    return FaultAction::kNone;
  }

  /// Total fault applications still pending (0 = every rule exhausted).
  [[nodiscard]] std::uint64_t pending() const {
    std::uint64_t n = 0;
    for (const Rule& r : rules_) n += r.remaining;
    return n;
  }

 private:
  struct Rule {
    Match match;
    FaultAction action;
    std::uint32_t remaining;
    std::function<bool(const Packet&)> predicate;
  };
  std::vector<Rule> rules_;
};

}  // namespace nicmcast::net

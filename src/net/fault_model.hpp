// Fault injection for the network channel.
//
// Real Myrinet has a nonzero bit-error rate (paper §2: "a network cannot be
// considered reliable"), which is exactly why the multicast scheme carries
// its own ack/timeout/retransmission machinery.  The injector decides, per
// packet, whether it traverses cleanly, is dropped in the fabric, or arrives
// corrupted (and is then discarded by the receiving NIC's CRC check).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace nicmcast::net {

enum class FaultAction : std::uint8_t { kNone, kDrop, kCorrupt };

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultAction on_packet(const Packet& packet) = 0;
};

/// The default: a perfect fabric.
class NoFaults final : public FaultInjector {
 public:
  FaultAction on_packet(const Packet&) override { return FaultAction::kNone; }
};

/// Independent per-packet drop/corrupt probabilities.
class RandomFaults final : public FaultInjector {
 public:
  RandomFaults(double drop_probability, double corrupt_probability,
               sim::Rng rng)
      : drop_p_(drop_probability), corrupt_p_(corrupt_probability),
        rng_(rng) {}

  FaultAction on_packet(const Packet&) override {
    const double u = rng_.uniform();
    if (u < drop_p_) return FaultAction::kDrop;
    if (u < drop_p_ + corrupt_p_) return FaultAction::kCorrupt;
    return FaultAction::kNone;
  }

 private:
  double drop_p_;
  double corrupt_p_;
  sim::Rng rng_;
};

/// Deterministic, test-oriented faults: match specific packets and apply an
/// action a bounded number of times.  Rules are evaluated in order; the
/// first live match wins.
class ScriptedFaults final : public FaultInjector {
 public:
  struct Match {
    std::optional<PacketType> type;
    std::optional<NodeId> src;
    std::optional<NodeId> dst;
    std::optional<std::uint32_t> seq;
    std::optional<GroupId> group;

    [[nodiscard]] bool matches(const Packet& p) const {
      const PacketHeader& h = p.header;
      return (!type || *type == h.type) && (!src || *src == h.src) &&
             (!dst || *dst == h.dst) && (!seq || *seq == h.seq) &&
             (!group || *group == h.group);
    }
  };

  /// Applies `action` to the first `count` packets matching `match`.
  void add_rule(Match match, FaultAction action, std::uint32_t count = 1) {
    rules_.push_back(Rule{match, action, count, nullptr});
  }

  /// Arbitrary-predicate rule for conditions Match cannot express.
  void add_predicate_rule(std::function<bool(const Packet&)> predicate,
                          FaultAction action, std::uint32_t count = 1) {
    rules_.push_back(Rule{Match{}, action, count, std::move(predicate)});
  }

  FaultAction on_packet(const Packet& p) override {
    for (Rule& rule : rules_) {
      if (rule.remaining == 0) continue;
      const bool hit =
          rule.predicate ? rule.predicate(p) : rule.match.matches(p);
      if (hit) {
        --rule.remaining;
        return rule.action;
      }
    }
    return FaultAction::kNone;
  }

  /// Total fault applications still pending (0 = every rule exhausted).
  [[nodiscard]] std::uint64_t pending() const {
    std::uint64_t n = 0;
    for (const Rule& r : rules_) n += r.remaining;
    return n;
  }

 private:
  struct Rule {
    Match match;
    FaultAction action;
    std::uint32_t remaining;
    std::function<bool(const Packet&)> predicate;
  };
  std::vector<Rule> rules_;
};

/// Coarse traffic class for per-direction fault targeting: the forward
/// (data-carrying) path vs the reverse (acknowledgment) path.  Killing only
/// one direction exercises very different recovery code: dead data path ->
/// receiver never sees the packet; dead ack path -> receiver sees duplicates
/// and must re-ack without re-delivering.
enum class TrafficClass : std::uint8_t { kData, kAck };

[[nodiscard]] constexpr TrafficClass traffic_class(PacketType t) {
  switch (t) {
    case PacketType::kAck:
    case PacketType::kMcastAck:
    case PacketType::kReduceAck:
      return TrafficClass::kAck;
    default:
      return TrafficClass::kData;
  }
}

/// Link/direction predicate shared by the targeted injectors.  Empty fields
/// match everything, so a default LinkFilter selects all traffic.
struct LinkFilter {
  std::optional<NodeId> src;
  std::optional<NodeId> dst;
  std::optional<TrafficClass> traffic;

  [[nodiscard]] bool matches(const Packet& p) const {
    return (!src || *src == p.header.src) && (!dst || *dst == p.header.dst) &&
           (!traffic || *traffic == traffic_class(p.header.type));
  }
};

/// Gilbert–Elliott two-state Markov loss model: a mostly-clean "good" state
/// and a lossy "bad" state with per-packet transition probabilities between
/// them.  Unlike RandomFaults this produces *bursts* of consecutive loss,
/// which is what stresses Go-back-N: a burst eats a whole window and forces
/// timeout-driven recovery rather than one isolated retransmission.
class GilbertElliottFaults final : public FaultInjector {
 public:
  struct Params {
    double p_good_to_bad = 0.01;  ///< per-packet chance of entering a burst
    double p_bad_to_good = 0.25;  ///< per-packet chance of a burst ending
    double good_drop = 0.0;
    double good_corrupt = 0.0;
    double bad_drop = 0.5;
    double bad_corrupt = 0.1;
  };

  GilbertElliottFaults(Params params, sim::Rng rng)
      : params_(params), rng_(rng) {}

  FaultAction on_packet(const Packet&) override {
    if (bad_) {
      if (rng_.uniform() < params_.p_bad_to_good) bad_ = false;
    } else {
      if (rng_.uniform() < params_.p_good_to_bad) bad_ = true;
    }
    const double drop = bad_ ? params_.bad_drop : params_.good_drop;
    const double corrupt = bad_ ? params_.bad_corrupt : params_.good_corrupt;
    const double u = rng_.uniform();
    if (u < drop) return FaultAction::kDrop;
    if (u < drop + corrupt) return FaultAction::kCorrupt;
    return FaultAction::kNone;
  }

  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  Params params_;
  sim::Rng rng_;
  bool bad_ = false;
};

/// Restricts an inner injector to packets matching a link/direction filter;
/// everything else passes through untouched.  Composes with any injector:
/// e.g. Gilbert–Elliott bursts on the ack path of one specific link.
class TargetedFaults final : public FaultInjector {
 public:
  TargetedFaults(LinkFilter filter, std::unique_ptr<FaultInjector> inner)
      : filter_(filter), inner_(std::move(inner)) {}

  FaultAction on_packet(const Packet& p) override {
    if (!filter_.matches(p)) return FaultAction::kNone;
    return inner_->on_packet(p);
  }

 private:
  LinkFilter filter_;
  std::unique_ptr<FaultInjector> inner_;
};

/// Time-windowed blackouts: inside each [start, end) window every matching
/// packet is dropped; outside all windows the fabric is perfect.  Models a
/// link or switch going dark and coming back — the recovery path is pure
/// timeout + retransmission with zero feedback during the outage.  The
/// clock callback decouples the injector from the Simulator type (tests can
/// drive it with a plain counter).
class BlackoutFaults final : public FaultInjector {
 public:
  using Clock = std::function<sim::TimePoint()>;

  explicit BlackoutFaults(Clock now) : now_(std::move(now)) {}

  void add_window(sim::TimePoint start, sim::TimePoint end,
                  LinkFilter filter = {}) {
    windows_.push_back(Window{start, end, filter});
  }

  FaultAction on_packet(const Packet& p) override {
    const sim::TimePoint t = now_();
    for (const Window& w : windows_) {
      if (w.start <= t && t < w.end && w.filter.matches(p)) {
        return FaultAction::kDrop;
      }
    }
    return FaultAction::kNone;
  }

 private:
  struct Window {
    sim::TimePoint start;
    sim::TimePoint end;
    LinkFilter filter;
  };
  Clock now_;
  std::vector<Window> windows_;
};

/// Chains several injectors; the first one to return a non-kNone action
/// wins.  Lets a soak scenario stack e.g. background random loss with a
/// targeted blackout.
class CompositeFaults final : public FaultInjector {
 public:
  void add(std::unique_ptr<FaultInjector> injector) {
    injectors_.push_back(std::move(injector));
  }

  FaultAction on_packet(const Packet& p) override {
    for (auto& injector : injectors_) {
      const FaultAction action = injector->on_packet(p);
      if (action != FaultAction::kNone) return action;
    }
    return FaultAction::kNone;
  }

 private:
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
};

}  // namespace nicmcast::net

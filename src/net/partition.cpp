#include "net/partition.hpp"

#include <stdexcept>

namespace nicmcast::net {

FabricPartition switch_cut(const Topology& topology, std::size_t shards,
                           const NetworkConfig& config) {
  if (shards == 0) {
    throw std::invalid_argument("switch_cut: shards must be >= 1");
  }
  const std::size_t vertices = topology.vertex_count();
  const std::size_t endpoints = topology.endpoint_count();

  FabricPartition part;
  part.shards = shards;
  part.lookahead = config.hop_latency;
  part.vertex_shard.assign(vertices, 0);
  part.link_owner.assign(topology.link_count(), 0);
  if (shards == 1) return part;  // everything on shard 0, no cross links

  // One pass over the links classifies switches (leaf = endpoint-adjacent)
  // and records each endpoint's lowest-id neighbouring switch.
  std::vector<bool> is_leaf(vertices, false);
  constexpr VertexId kNoSwitch = static_cast<VertexId>(-1);
  std::vector<VertexId> endpoint_switch(endpoints, kNoSwitch);
  for (LinkId l = 0; l < topology.link_count(); ++l) {
    const LinkDesc& link = topology.link(l);
    if (topology.is_endpoint(link.from) && !topology.is_endpoint(link.to)) {
      is_leaf[link.to] = true;
      VertexId& sw = endpoint_switch[link.from];
      if (sw == kNoSwitch || link.to < sw) sw = link.to;
    }
  }

  // Contiguous block assignment in switch-id order: leaf i of L leaves goes
  // to shard i*S/L (spines likewise).  Canned topologies create leaves in
  // endpoint order, so neighbouring leaves — and the tree subtrees rooted
  // under them — land on the same shard.
  std::size_t leaf_count = 0;
  std::size_t spine_count = 0;
  for (VertexId v = static_cast<VertexId>(endpoints); v < vertices; ++v) {
    (is_leaf[v] ? leaf_count : spine_count) += 1;
  }
  std::size_t leaf_index = 0;
  std::size_t spine_index = 0;
  for (VertexId v = static_cast<VertexId>(endpoints); v < vertices; ++v) {
    if (is_leaf[v]) {
      part.vertex_shard[v] =
          static_cast<std::uint32_t>(leaf_index * shards / leaf_count);
      ++leaf_index;
    } else {
      part.vertex_shard[v] =
          static_cast<std::uint32_t>(spine_index * shards / spine_count);
      ++spine_index;
    }
  }
  for (std::size_t e = 0; e < endpoints; ++e) {
    part.vertex_shard[e] =
        endpoint_switch[e] == kNoSwitch
            // Switchless wiring (back-to-back): split endpoints directly.
            ? static_cast<std::uint32_t>(e % shards)
            : part.vertex_shard[endpoint_switch[e]];
  }

  for (LinkId l = 0; l < topology.link_count(); ++l) {
    const LinkDesc& link = topology.link(l);
    part.link_owner[l] = part.vertex_shard[link.from];
    if (part.vertex_shard[link.from] != part.vertex_shard[link.to]) {
      ++part.cross_links;
    }
  }
  return part;
}

}  // namespace nicmcast::net

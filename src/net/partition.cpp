#include "net/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace nicmcast::net {

FabricPartition switch_cut(const Topology& topology, std::size_t shards,
                           const NetworkConfig& config) {
  if (shards == 0) {
    throw std::invalid_argument("switch_cut: shards must be >= 1");
  }
  const std::size_t vertices = topology.vertex_count();
  const std::size_t endpoints = topology.endpoint_count();

  FabricPartition part;
  part.shards = 1;
  part.lookahead = config.hop_latency;
  part.vertex_shard.assign(vertices, 0);
  part.link_owner.assign(topology.link_count(), 0);
  part.channel_lookahead.assign(1, part.lookahead);
  if (shards == 1) return part;  // everything on shard 0, no cross links

  // One pass over the links classifies switches (leaf = endpoint-adjacent)
  // and records each endpoint's lowest-id neighbouring switch.
  std::vector<bool> is_leaf(vertices, false);
  constexpr VertexId kNoSwitch = static_cast<VertexId>(-1);
  std::vector<VertexId> endpoint_switch(endpoints, kNoSwitch);
  for (LinkId l = 0; l < topology.link_count(); ++l) {
    const LinkDesc& link = topology.link(l);
    if (topology.is_endpoint(link.from) && !topology.is_endpoint(link.to)) {
      is_leaf[link.to] = true;
      VertexId& sw = endpoint_switch[link.from];
      if (sw == kNoSwitch || link.to < sw) sw = link.to;
    }
  }

  // Contiguous block assignment in switch-id order: leaf i of L leaves goes
  // to shard i*S/L (spines likewise).  Canned topologies create leaves in
  // endpoint order, so neighbouring leaves — and the tree subtrees rooted
  // under them — land on the same shard.
  std::size_t leaf_count = 0;
  std::size_t spine_count = 0;
  for (VertexId v = static_cast<VertexId>(endpoints); v < vertices; ++v) {
    (is_leaf[v] ? leaf_count : spine_count) += 1;
  }

  // A shard with no leaf block would own no endpoints — its worker would
  // spin through every LBTS round contributing nothing, and with S > L the
  // leaf/spine deals stop aligning, splitting leaf-local subtrees across
  // shards.  Clamp instead of erroring: callers (the soak randomizes shard
  // counts; benches sweep them) get the largest partition that still puts
  // endpoints on every shard.  Switchless wirings deal endpoints directly,
  // so the endpoint count is the block count there.
  const std::size_t blocks = leaf_count > 0 ? leaf_count : endpoints;
  shards = std::min(shards, blocks);
  part.shards = shards;
  if (shards == 1) return part;

  std::size_t leaf_index = 0;
  std::size_t spine_index = 0;
  for (VertexId v = static_cast<VertexId>(endpoints); v < vertices; ++v) {
    if (is_leaf[v]) {
      part.vertex_shard[v] =
          static_cast<std::uint32_t>(leaf_index * shards / leaf_count);
      ++leaf_index;
    } else {
      part.vertex_shard[v] =
          static_cast<std::uint32_t>(spine_index * shards / spine_count);
      ++spine_index;
    }
  }
  for (std::size_t e = 0; e < endpoints; ++e) {
    part.vertex_shard[e] =
        endpoint_switch[e] == kNoSwitch
            // Switchless wiring (back-to-back): split endpoints directly.
            ? static_cast<std::uint32_t>(e % shards)
            : part.vertex_shard[endpoint_switch[e]];
  }

  // Per-ordered-pair channel lookahead: fold the cut links into a
  // shards × shards matrix of minimum crossing latencies.  Every link in
  // the model crosses in `hop_latency`, so today each direct-link entry
  // equals the global floor — the derivation still walks the cut so that
  // per-link latencies slot in without touching callers.  Pairs with no
  // direct cut link keep the global fallback: the fabric's controller
  // notifications hop between arbitrary shard pairs at exactly
  // `now + lookahead`, so no channel may promise more.
  part.channel_lookahead.assign(shards * shards, part.lookahead);
  for (LinkId l = 0; l < topology.link_count(); ++l) {
    const LinkDesc& link = topology.link(l);
    const std::uint32_t from_shard = part.vertex_shard[link.from];
    const std::uint32_t to_shard = part.vertex_shard[link.to];
    part.link_owner[l] = from_shard;
    if (from_shard != to_shard) {
      ++part.cross_links;
      sim::Duration& entry =
          part.channel_lookahead[from_shard * shards + to_shard];
      entry = std::min(entry, config.hop_latency);
    }
  }

  // Post-condition of the clamp: every shard owns at least one endpoint.
  // i*S/L with S <= L maps the block index onto all of 0..S-1, so a gap
  // here means the dealing logic regressed, not that the caller over-asked.
  std::vector<bool> populated(shards, false);
  for (std::size_t e = 0; e < endpoints; ++e) {
    populated[part.vertex_shard[e]] = true;
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (!populated[s]) {
      throw std::logic_error("switch_cut: shard " + std::to_string(s) +
                             " owns no endpoints");
    }
  }
  return part;
}

}  // namespace nicmcast::net

#include "net/sharded_fabric.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nicmcast::net {

namespace {

/// splitmix64 finalizer — the schedule-independent loss coin.  Deciding a
/// drop from (seed, edge, iter, attempt) instead of a draw from a shared
/// RNG stream is what keeps drop/retransmit counts identical across shard
/// counts: no shard interleaving can reorder the draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedFabric::ShardedFabric(Topology topology, FabricTree tree,
                             FabricOptions options, std::size_t shards)
    : topology_(std::move(topology)),
      tree_(std::move(tree)),
      options_(options),
      partition_(switch_cut(topology_, shards, options.net)) {
  if (tree_.size() != topology_.endpoint_count()) {
    throw std::invalid_argument(
        "ShardedFabric: tree size != topology endpoint count");
  }
  if (tree_.child_off.size() != tree_.size() + 1) {
    throw std::invalid_argument("ShardedFabric: malformed child_off");
  }
  if (options_.workload == FabricWorkload::kBarrier &&
      options_.loss_rate > 0.0) {
    // The barrier's arrive/release packets ride the ack path (which the
    // loss model deliberately never touches); silently running it lossy
    // would report a reliability we don't simulate.
    throw std::invalid_argument(
        "ShardedFabric: kBarrier requires loss_rate == 0");
  }
  if (options_.workload == FabricWorkload::kMultisend &&
      tree_.child_count(tree_.root) + 1 != tree_.size()) {
    throw std::invalid_argument(
        "ShardedFabric: kMultisend needs a star tree (every endpoint a "
        "direct child of the root)");
  }
  // partition_.shards, not the requested count: switch_cut clamps to the
  // leaf-block count so no worker ends up owning zero endpoints.
  engine_ = std::make_unique<sim::ShardedEngine>(
      partition_.shards, partition_.lookahead, options_.seed);
  engine_->enable_batched_horizons(options_.batch_horizons);
  engine_->enable_async_sync(options_.async_sync);
  // Hand the engine the partition's per-pair channel lookaheads (the async
  // mode's EOT stride; post() enforces them as the send window).  With the
  // model's uniform hop latency every entry equals the global floor, so
  // this changes no schedule — it wires the derivation end to end.
  for (std::size_t from = 0; from < partition_.shards; ++from) {
    for (std::size_t to = 0; to < partition_.shards; ++to) {
      if (from != to) {
        engine_->set_channel_lookahead(
            from, to, partition_.channel_lookahead_of(from, to));
      }
    }
  }
  shards_.reserve(partition_.shards);
  for (std::size_t s = 0; s < partition_.shards; ++s) {
    shards_.push_back(std::make_unique<ShardState>(topology_));
  }
  link_free_.assign(topology_.link_count(), sim::TimePoint{0});
  received_iter_.assign(tree_.size(), -1);
  edges_.assign(tree_.size(), EdgeState{});
  if (options_.workload == FabricWorkload::kBarrier) {
    barrier_arrivals_.assign(tree_.size(), 0);
    barrier_self_ready_.assign(tree_.size(), 0);
    barrier_round_.assign(tree_.size(), 0);
  }
  // The single message allocation every delivery slices out of (the GM
  // zero-copy posture): slices travel inside cross-shard posted closures
  // and are released on whichever shard executes them.
  std::vector<std::byte> bytes(options_.message_bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(i & 0xff);
  }
  payload_ = Buffer::take(std::move(bytes));
}

std::size_t ShardedFabric::packets_per_message() const {
  return (options_.message_bytes + options_.nic.max_packet_payload - 1) /
         options_.nic.max_packet_payload;
}

std::size_t ShardedFabric::train_wire_bytes() const {
  // A >4096B message travels as a back-to-back packet train; the train
  // occupies the path for its summed wire size and is acked once.
  return options_.message_bytes +
         packets_per_message() * options_.net.framing_bytes;
}

bool ShardedFabric::dropped(NodeId child, std::int32_t iter,
                            std::uint32_t attempt) const {
  if (options_.loss_rate <= 0.0) return false;
  const std::uint64_t h =
      mix64(options_.seed ^ (static_cast<std::uint64_t>(child) << 40) ^
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter))
             << 8) ^
            attempt);
  const double coin =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  return coin < options_.loss_rate;
}

sim::Duration ShardedFabric::skew_of(std::int32_t iter, NodeId node) const {
  if (options_.avg_skew_us <= 0.0) return sim::usec(0.0);
  // Counter hash, not an RNG stream: the draw for (iter, node) is the same
  // no matter which shard computes it or in what order, which is what
  // makes skewed runs shard-count invariant.
  const std::uint64_t h =
      mix64(options_.seed ^ 0x736b6577ULL ^
            (static_cast<std::uint64_t>(node) << 24) ^
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(iter)));
  const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
  return sim::usec(coin * 2.0 * options_.avg_skew_us);  // mean avg_skew_us
}

void ShardedFabric::start_iteration(std::int32_t iter) {
  const std::uint32_t me = shard_of(tree_.root);
  sim::Simulator& sim = sim_of(me);
  const sim::TimePoint now = sim.now();
  ctrl_iter_ = iter;
  ctrl_remaining_ = tree_.size() - 1;
  ctrl_iter_start_ = now;
  ctrl_last_delivery_ = now;
  if (ctrl_remaining_ == 0) return;  // single-node tree: nothing to send

  const nic::NicConfig& nic = options_.nic;
  const std::size_t npkts = packets_per_message();
  const sim::Duration ser = sim::transfer_time(train_wire_bytes(),
                                               options_.net.bandwidth_mbps);
  // Process skew applies to receivers only, mirroring the coroutine-stack
  // experiment (mpi::run_skew_experiment): skew is measured relative to the
  // root's entry, so the root injects on time and late receivers are
  // accounted at the controller.  Skewing the root here would delay every
  // delivery and charge the wait to the receivers' CPU — inverting the
  // paper's flat NIC-multicast curve.
  // Host posts the multicast send; the NIC DMAs the payload once and chains
  // one replica per child off a single send token (the paper's alternative
  // 2: re-queue the packet descriptor with a rewritten header).
  sim::TimePoint inject =
      now + nic.host_post_overhead + nic.host_to_nic_delay + nic.dma_startup +
      sim::transfer_time(options_.message_bytes, nic.host_dma_mbps) +
      nic.send_token_processing +
      nic.per_packet_processing * static_cast<std::int64_t>(npkts);
  const std::size_t nc = tree_.child_count(tree_.root);
  for (std::size_t q = 0; q < nc; ++q) {
    const NodeId child = tree_.child(tree_.root, q);
    if (q > 0) ++shards_[me]->nic.header_rewrites;
    sim.schedule_at(inject, [this, child, iter] {
      send_data(tree_.root, child, iter, 0, sim_of(shard_of(tree_.root)).now());
    });
    inject = inject + nic.header_rewrite + ser;
  }
}

void ShardedFabric::send_data(NodeId from, NodeId to, std::int32_t iter,
                              std::uint32_t attempt, sim::TimePoint inject) {
  const std::uint32_t me = shard_of(from);
  ShardState& st = *shards_[me];
  sim::Simulator& sim = sim_of(me);

  // Shard-local descriptor churn: acquired at injection, recycled when the
  // transmit completes (end of this event) — same lifecycle the firmware
  // model uses, now with one pool per shard.
  Packet packet;
  packet.header.type = PacketType::kMcastData;
  packet.header.src = from;
  packet.header.dst = to;
  packet.header.msg_length =
      static_cast<std::uint32_t>(options_.message_bytes);
  const nic::DescriptorRef descriptor = st.pool.acquire(std::move(packet));

  const std::size_t npkts = packets_per_message();
  st.nic.packets_sent += npkts;

  // Arm (or re-arm) the per-edge Go-back-N timer.  A stale timer from the
  // previous iteration can still be pending here — its ack raced the
  // controller's completion — and is simply replaced.
  EdgeState& edge = edges_[to];
  if (edge.timer_armed) sim.cancel(edge.timer);
  edge.attempt = attempt;
  edge.iter = iter;
  edge.timer_armed = true;
  edge.timer =
      sim.schedule_at(inject + options_.nic.retransmit_timeout,
                      [this, from, to, iter] { retransmit(from, to, iter); });

  const std::size_t wire = train_wire_bytes();
  if (wire <= options_.net.small_packet_bypass_bytes) {
    // Control-sized data: flit-interleaved, no path reservation.
    const RouteView path = st.routes.route(from, to);
    const sim::TimePoint arrival =
        inject +
        options_.net.hop_latency * static_cast<std::int64_t>(path.size()) +
        sim::transfer_time(wire, options_.net.bandwidth_mbps);
    engine_->post(me, shard_of(to), arrival,
                  [this, from, to, iter, attempt,
                   payload = payload_.slice(0, options_.message_bytes)] {
                    deliver(from, to, iter, attempt, payload);
                  });
    return;
  }
  // The first route link leaves `from` itself, so its owner is this shard.
  continue_segment(me, from, to, 0, inject, iter, attempt);
}

void ShardedFabric::continue_segment(std::uint32_t owner, NodeId from,
                                     NodeId to, std::size_t seg,
                                     sim::TimePoint inject, std::int32_t iter,
                                     std::uint32_t attempt) {
  const sim::Duration hop = options_.net.hop_latency;
  const sim::Duration ser = sim::transfer_time(train_wire_bytes(),
                                               options_.net.bandwidth_mbps);
  // Route lookup from the executing shard's own table: recomputing here is
  // cheaper and safer than shipping RouteViews across threads (the owning
  // arena mutates under later lookups).
  ShardState& st = *shards_[owner];
  const RouteView path = st.routes.route(from, to);

  // Owner-maximal segment [seg, end): all consecutive links this shard owns.
  std::size_t end = seg + 1;
  while (end < path.size() && partition_.link_owner[path[end]] == owner) {
    ++end;
  }

  // Wormhole cut-through over the segment: the earliest (virtual) injection
  // instant at which the head finds every segment link free on arrival,
  // then staggered occupancy — the exact Network::transmit formula, applied
  // per segment.  With one shard the segment is the whole path.
  sim::TimePoint v = inject;
  for (std::size_t k = seg; k < end; ++k) {
    const sim::TimePoint needed =
        link_free_[path[k]] - hop * static_cast<std::int64_t>(k);
    v = std::max(v, needed);
  }
  for (std::size_t k = seg; k < end; ++k) {
    link_free_[path[k]] = v + hop * static_cast<std::int64_t>(k) + ser;
  }

  if (end < path.size()) {
    // Head reaches the first foreign link at v + end*hop — at least one
    // full hop after this event, so the post respects the lookahead.
    const std::uint32_t next_owner = partition_.link_owner[path[end]];
    engine_->post(owner, next_owner,
                  v + hop * static_cast<std::int64_t>(end),
                  [this, next_owner, from, to, end, v, iter, attempt] {
                    continue_segment(next_owner, from, to, end, v, iter,
                                     attempt);
                  });
    return;
  }
  const sim::TimePoint arrival =
      v + hop * static_cast<std::int64_t>(path.size()) + ser;
  // The payload slice rides the closure to the destination shard, where it
  // is released after delivery — the cross-shard refcount traffic the
  // atomic Buffer exists for.
  engine_->post(owner, shard_of(to), arrival,
                [this, from, to, iter, attempt,
                 payload = payload_.slice(0, options_.message_bytes)] {
                  deliver(from, to, iter, attempt, payload);
                });
}

void ShardedFabric::deliver(NodeId from, NodeId to, std::int32_t iter,
                            std::uint32_t attempt, Buffer payload) {
  const std::uint32_t me = shard_of(to);
  ShardState& st = *shards_[me];
  sim::Simulator& sim = sim_of(me);
  const std::size_t npkts = packets_per_message();
  const nic::NicConfig& nic = options_.nic;

  if (dropped(to, iter, attempt)) {
    // Receiver-side CRC failure: the train traversed (and charged) every
    // link but is not acknowledged; the sender's timer will drive a resend.
    st.nic.crc_drops += npkts;
    return;
  }
  const sim::TimePoint base =
      sim.now() + nic.recv_packet_processing * static_cast<std::int64_t>(npkts);
  if (received_iter_[to] == iter) {
    // Duplicate from a retransmission whose original ack was in flight:
    // drop the payload, but re-ack so the sender's timer is disarmed.
    st.nic.duplicate_drops += npkts;
    sim.schedule_at(base + nic.ack_processing,
                    [this, from, to, iter] { send_ack(to, from, iter); });
    return;
  }
  received_iter_[to] = iter;
  st.nic.packets_received += npkts;
  ++st.deliveries;

  sim.schedule_at(base + nic.ack_processing,
                  [this, from, to, iter] { send_ack(to, from, iter); });

  // Forward down the tree: the receive token transforms into a send token
  // for the first child; every further replica is a header rewrite.
  const std::size_t nc = tree_.child_count(to);
  if (nc > 0) {
    const sim::Duration ser = sim::transfer_time(
        train_wire_bytes(), options_.net.bandwidth_mbps);
    st.nic.forwards += npkts * nc;
    st.nic.header_rewrites += nc - 1;
    sim::TimePoint inject = base + nic.forward_processing;
    for (std::size_t q = 0; q < nc; ++q) {
      const NodeId child = tree_.child(to, q);
      sim.schedule_at(inject, [this, to, child, iter] {
        send_data(to, child, iter, 0, sim_of(shard_of(to)).now());
      });
      inject = inject + nic.header_rewrite + ser;
    }
  }

  // kMultisend completion is sender-side (the last ack landing back at the
  // root), so receivers stay silent towards the controller.
  if (options_.workload == FabricWorkload::kMultisend) return;

  // Land the payload in host memory and report completion to the
  // controller.  The notification travels at exactly +lookahead no matter
  // where the root shard is, so controller pacing — and with it the whole
  // iteration schedule — is identical across shard counts.  (payload.size()
  // == message_bytes: the DMA charges for the bytes that actually landed.)
  sim::TimePoint host_time =
      base + nic.event_delivery + nic.dma_startup +
      sim::transfer_time(payload.size(), nic.host_dma_mbps);
  if (options_.workload == FabricWorkload::kBcast ||
      options_.workload == FabricWorkload::kSkewBcast) {
    host_time = host_time + options_.host_entry_overhead;
  }
  engine_->post(me, shard_of(tree_.root), sim.now() + partition_.lookahead,
                [this, to, host_time] {
                  // Runs on the root's shard worker: post() targeted it.
                  controller_role_.assert_held();
                  notify_controller(to, host_time);
                });
}

void ShardedFabric::send_ack(NodeId from, NodeId to, std::int32_t iter) {
  const std::uint32_t me = shard_of(from);
  ShardState& st = *shards_[me];
  sim::Simulator& sim = sim_of(me);
  ++st.nic.acks_sent;
  // Acks are framing-only control packets: always under the wormhole
  // bypass threshold, so they neither wait on nor add to link occupancy.
  const RouteView path = st.routes.route(from, to);
  const sim::TimePoint arrival =
      sim.now() +
      options_.net.hop_latency * static_cast<std::int64_t>(path.size()) +
      sim::transfer_time(options_.net.framing_bytes,
                         options_.net.bandwidth_mbps);
  engine_->post(me, shard_of(to), arrival, [this, from, to, iter] {
    ack_arrived(to, from, iter);
  });
}

void ShardedFabric::ack_arrived(NodeId parent, NodeId child,
                                std::int32_t iter) {
  EdgeState& edge = edges_[child];
  if (edge.timer_armed && edge.iter == iter) {
    // The cross-shard in-flight cancel: the ack disarms a retransmit timer
    // living on another shard's wheel.
    sim_of(shard_of(parent)).cancel(edge.timer);
    edge.timer_armed = false;
    // Exactly one ack per (child, iter) reaches this branch: re-acks from
    // duplicate deliveries find the timer already disarmed above.
    if (options_.workload == FabricWorkload::kMultisend &&
        parent == tree_.root) {
      // This ack executes on parent's shard and parent is the root, so
      // the controller role is structurally held here.
      controller_role_.assert_held();
      multisend_ack_completed(iter);
    }
  }
}

void ShardedFabric::multisend_ack_completed(std::int32_t iter) {
  // Runs on the root's shard: the star tree makes the root every ack's
  // destination, and controller state is root-shard-owned.
  if (iter != ctrl_iter_) return;
  const nic::NicConfig& nic = options_.nic;
  sim::Simulator& sim = sim_of(shard_of(tree_.root));
  // Sender-side completion: the NIC raises the send-complete event to the
  // host once this child's ack lands (paper Figure 3's measured quantity).
  ctrl_last_delivery_ =
      std::max(ctrl_last_delivery_, sim.now() + nic.event_delivery);
  if (--ctrl_remaining_ > 0) return;

  if (ctrl_iter_ >= options_.warmup) {
    latency_us_.push_back(
        (ctrl_last_delivery_ - ctrl_iter_start_).microseconds());
  }
  const std::int32_t next = ctrl_iter_ + 1;
  if (next >= options_.warmup + options_.iterations) return;
  const sim::TimePoint start =
      std::max(sim.now(), ctrl_last_delivery_) + nic.host_post_overhead;
  sim.schedule_at(start, [this, next] {
    controller_role_.assert_held();  // scheduled on the root's shard
    start_iteration(next);
  });
}

void ShardedFabric::retransmit(NodeId from, NodeId to, std::int32_t iter) {
  EdgeState& edge = edges_[to];
  edge.timer_armed = false;
  if (edge.iter != iter) return;  // iteration already moved on
  const std::uint32_t next_attempt = edge.attempt + 1;
  if (next_attempt > options_.nic.max_retries) {
    throw std::runtime_error(
        "ShardedFabric: retries exhausted on edge " + std::to_string(from) +
        "->" + std::to_string(to));
  }
  const std::uint32_t me = shard_of(from);
  shards_[me]->nic.retransmissions += packets_per_message();
  send_data(from, to, iter, next_attempt, sim_of(me).now());
}

void ShardedFabric::notify_controller(NodeId node, sim::TimePoint host_time) {
  if (options_.workload == FabricWorkload::kSkewBcast) {
    // Receiver-side skew is applied here rather than threaded through the
    // data path: the rank is not at its MPI_Bcast call until `ready`, so
    // the bcast charges it CPU only from then on — the paper's flat
    // NIC-multicast curve is precisely this quantity staying put as
    // avg_skew_us grows.
    const sim::Duration skew = skew_of(ctrl_iter_, node);
    const sim::TimePoint ready = ctrl_iter_start_ + skew;
    const sim::TimePoint completion = std::max(host_time, ready);
    if (ctrl_iter_ >= options_.warmup) {
      const double cpu = (completion - ready).microseconds();
      ctrl_cpu_sum_us_ += cpu;
      ctrl_cpu_max_us_ = std::max(ctrl_cpu_max_us_, cpu);
      ctrl_skew_sum_us_ += skew.microseconds();
      ++ctrl_cpu_count_;
    }
    host_time = completion;
  }
  ctrl_last_delivery_ = std::max(ctrl_last_delivery_, host_time);
  if (--ctrl_remaining_ > 0) return;

  if (ctrl_iter_ >= options_.warmup) {
    latency_us_.push_back(
        (ctrl_last_delivery_ - ctrl_iter_start_).microseconds());
  }
  const std::int32_t next = ctrl_iter_ + 1;
  if (next >= options_.warmup + options_.iterations) return;
  if (options_.workload == FabricWorkload::kBarrier) {
    // Rounds chain through the tree itself (each node re-arms after its
    // release); the controller only rolls its bookkeeping forward.
    ctrl_iter_ = next;
    ctrl_remaining_ = tree_.size();
    ctrl_iter_start_ = ctrl_last_delivery_;
    return;
  }
  sim::Simulator& sim = sim_of(shard_of(tree_.root));
  // The next iteration starts once the slowest host delivery has landed —
  // max() because completion notifications outrun the host DMA by design.
  const sim::TimePoint start =
      std::max(sim.now(), ctrl_last_delivery_) + options_.nic.host_post_overhead;
  sim.schedule_at(start, [this, next] {
    controller_role_.assert_held();  // scheduled on the root's shard
    start_iteration(next);
  });
}

sim::TimePoint ShardedFabric::ctrl_packet_arrival(std::uint32_t me,
                                                  NodeId from, NodeId to) {
  // Framing-only control packet on the wormhole bypass path: always at
  // least one hop out, so posting at this instant respects the lookahead.
  ShardState& st = *shards_[me];
  const RouteView path = st.routes.route(from, to);
  return sim_of(me).now() +
         options_.net.hop_latency * static_cast<std::int64_t>(path.size()) +
         sim::transfer_time(options_.net.framing_bytes,
                            options_.net.bandwidth_mbps);
}

void ShardedFabric::barrier_ready(NodeId node, std::int32_t round) {
  if (round != barrier_round_[node]) {
    throw std::logic_error("ShardedFabric: barrier ready for wrong round");
  }
  barrier_self_ready_[node] = 1;
  barrier_try_send_up(node);
}

void ShardedFabric::barrier_child_arrived(NodeId node, std::int32_t round) {
  // Causality makes early arrivals impossible: a child only sends round r
  // after its own r-1 release, which the parent forwarded — so the parent
  // has already rolled to r.  Anything else is a protocol bug.
  if (round != barrier_round_[node]) {
    throw std::logic_error("ShardedFabric: barrier arrive for wrong round");
  }
  ++shards_[shard_of(node)]->nic.packets_received;
  ++barrier_arrivals_[node];
  barrier_try_send_up(node);
}

void ShardedFabric::barrier_try_send_up(NodeId node) {
  if (barrier_self_ready_[node] == 0) return;
  if (barrier_arrivals_[node] != tree_.child_count(node)) return;
  const std::int32_t round = barrier_round_[node];
  const std::uint32_t me = shard_of(node);
  sim::Simulator& sim = sim_of(me);
  const nic::NicConfig& nic = options_.nic;
  if (node == tree_.root) {
    // The whole fabric has arrived: the release wave starts here after the
    // NIC turns the last combined arrive into a send token.
    sim.schedule_at(sim.now() + nic.forward_processing,
                    [this, node, round] { barrier_release(node, round); });
    return;
  }
  // Combine the subtree into one arrive packet up the tree.
  ++shards_[me]->nic.packets_sent;
  const NodeId parent = tree_.parent[node];
  const sim::TimePoint arrival =
      ctrl_packet_arrival(me, node, parent) + nic.ack_processing;
  engine_->post(me, shard_of(parent), arrival, [this, parent, round] {
    barrier_child_arrived(parent, round);
  });
}

void ShardedFabric::barrier_release(NodeId node, std::int32_t round) {
  const std::uint32_t me = shard_of(node);
  ShardState& st = *shards_[me];
  sim::Simulator& sim = sim_of(me);
  const nic::NicConfig& nic = options_.nic;
  if (node != tree_.root) ++st.nic.packets_received;

  // Fan the release out, one control packet per child, paced by the cost
  // of re-queuing the descriptor with a rewritten header.
  const std::size_t nch = tree_.child_count(node);
  sim::TimePoint send = sim.now();
  for (std::size_t q = 0; q < nch; ++q) {
    const NodeId child = tree_.child(node, q);
    ++st.nic.packets_sent;
    if (q > 0) ++st.nic.header_rewrites;
    const RouteView path = st.routes.route(node, child);
    const sim::TimePoint arrival =
        send +
        options_.net.hop_latency * static_cast<std::int64_t>(path.size()) +
        sim::transfer_time(options_.net.framing_bytes,
                           options_.net.bandwidth_mbps);
    engine_->post(me, shard_of(child), arrival, [this, child, round] {
      barrier_release(child, round);
    });
    send = send + nic.header_rewrite;
  }

  // The host learns the barrier completed via a GM event; the controller
  // hears about it at exactly +lookahead (shard-count-invariant pacing).
  const sim::TimePoint host_time = sim.now() + nic.event_delivery;
  ++st.deliveries;
  engine_->post(me, shard_of(tree_.root), sim.now() + partition_.lookahead,
                [this, node, host_time] {
                  // Runs on the root's shard worker: post() targeted it.
                  controller_role_.assert_held();
                  notify_controller(node, host_time);
                });

  // Reset and arm the next round locally — rounds self-chain through the
  // tree, with the node's per-round process skew applied at re-entry.
  barrier_arrivals_[node] = 0;
  barrier_self_ready_[node] = 0;
  barrier_round_[node] = round + 1;
  if (round + 1 >= options_.warmup + options_.iterations) return;
  const sim::TimePoint ready =
      sim.now() + nic.host_post_overhead + skew_of(round + 1, node);
  sim.schedule_at(ready, [this, node, next = round + 1] {
    barrier_ready(node, next);
  });
}

FabricResult ShardedFabric::run() {
  if (options_.workload == FabricWorkload::kBarrier) {
    // Round 0: every node becomes ready after its own skew delay.  All
    // rounds after that chain through barrier_release; the controller only
    // counts tree_.size() completions per round.
    {
      // Workers have not started: the calling thread owns everything.
      const sim::RoleGuard controller(controller_role_);
      ctrl_iter_ = 0;
      ctrl_remaining_ = tree_.size();
      ctrl_iter_start_ = sim::TimePoint{0};
      ctrl_last_delivery_ = sim::TimePoint{0};
    }
    for (std::size_t i = 0; i < tree_.size(); ++i) {
      const NodeId node = static_cast<NodeId>(i);
      const sim::TimePoint ready = sim::TimePoint{0} + skew_of(0, node);
      sim_of(shard_of(node)).schedule_at(ready, [this, node] {
        barrier_ready(node, 0);
      });
    }
  } else {
    sim_of(shard_of(tree_.root))
        .schedule_at(sim::TimePoint{0}, [this] {
          controller_role_.assert_held();  // runs on the root's shard
          start_iteration(0);
        });
  }
  engine_->run();

  FabricResult out;
  {
    // Workers joined in engine_->run(): the calling thread owns the
    // controller state again.
    const sim::RoleGuard controller(controller_role_);
    out.latency_us = std::move(latency_us_);
    if (ctrl_cpu_count_ > 0) {
      const double n = static_cast<double>(ctrl_cpu_count_);
      out.avg_bcast_cpu_us = ctrl_cpu_sum_us_ / n;
      out.max_bcast_cpu_us = ctrl_cpu_max_us_;
      out.avg_applied_skew_us = ctrl_skew_sum_us_ / n;
    }
  }
  out.cross_links = partition_.cross_links;
  out.lbts_rounds = engine_->lbts_rounds();
  out.shard_order_hashes = engine_->shard_order_hashes();
  out.merged_order_hash = engine_->merged_order_hash();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardState& st = *shards_[s];
    nic::accumulate(out.nic_totals, st.nic);
    out.nic_totals.descriptor_allocs += st.pool.allocs();
    out.nic_totals.descriptor_reuses += st.pool.reuses();
    out.deliveries += st.deliveries;

    const sim::EventQueue::Stats& q = engine_->shard(s).queue_stats();
    out.events_scheduled += q.scheduled;
    out.events_executed += q.executed;
    out.events_cancelled += q.cancelled;
    out.heap_actions += q.heap_actions;
    out.pool_slots += q.pool_slots;
    out.wheel_cascades += q.wheel_cascades;
    out.overflow_scheduled += q.overflow_scheduled;
    out.overflow_promotions += q.overflow_promotions;
    out.shard_wheel_occupancy_peak.push_back(q.wheel_occupancy_peak);

    const RouteTableStats& r = st.routes.stats();
    out.routes_materialized += r.routes_materialized;
    out.route_links_stored += r.links_stored;
    out.route_links_shared += r.links_shared;

    const sim::ShardedEngine::ShardStats& ss = engine_->shard_stats(s);
    out.cross_shard_msgs += ss.cross_shard_msgs_sent;
    out.horizon_stalls += ss.horizon_stalls;
    out.channel_spills += ss.channel_spills;
    out.null_msgs_sent += ss.null_msgs_sent;
    out.null_msgs_demanded += ss.null_msgs_demanded;
    out.eot_advances += ss.eot_advances;
    out.blocked_waits += ss.blocked_waits;
  }
  return out;
}

}  // namespace nicmcast::net

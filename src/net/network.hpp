// The wormhole-routed network channel model.
//
// Myrinet switches are cut-through: the packet head advances one hop per
// `hop_latency` while the body streams behind it at link bandwidth, and the
// whole path is effectively occupied for the packet's serialisation time.
// We model exactly that: an injection time is chosen so that every link on
// the (source-routed) path is free when the head reaches it, then every link
// is marked busy for the serialisation window, staggered by hop latency.
// This captures first-order path contention without simulating flits.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault_model.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::net {

struct NetworkConfig {
  /// Link bandwidth.  Myrinet-2000: 2 Gb/s = 250 MB/s.
  double bandwidth_mbps = 250.0;
  /// Per-switch-hop head latency (cut-through), including cable flight time.
  sim::Duration hop_latency = sim::usec(0.3);
  /// Route + header + CRC framing bytes added to every packet on the wire.
  std::size_t framing_bytes = 24;
  /// Packets at or below this wire size (acks and other control traffic)
  /// interleave at flit granularity in real wormhole switches instead of
  /// waiting for a whole-path slot.  They are charged serialisation and hop
  /// latency but neither wait on nor add to link occupancy.  The scalar
  /// per-link occupancy model would otherwise let a 24-byte ack reserve the
  /// sender's uplink tens of microseconds in the future and falsely block
  /// data behind it.
  std::size_t small_packet_bypass_bytes = 128;
};

/// Receiver interface implemented by the NIC model.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void packet_arrived(Packet packet) = 0;
};

struct NetworkStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t payload_bytes_delivered = 0;
};

class Network {
 public:
  Network(sim::Simulator& sim, Topology topology, NetworkConfig config = {});

  /// Registers the NIC receiving packets addressed to `node`.
  void attach(NodeId node, PacketSink& sink);

  /// Replaces the fault injector (default: NoFaults).
  void set_fault_injector(std::unique_ptr<FaultInjector> injector);

  struct TxTiming {
    /// When the source NIC has pushed the last byte onto its first link
    /// (its transmit DMA engine is free again).
    sim::TimePoint tx_done;
    /// When the last byte reaches the destination NIC (only meaningful if
    /// delivered).
    sim::TimePoint arrival;
    bool delivered = false;
  };

  /// Injects `packet` at the current simulation time (or at `not_before`
  /// when the caller pre-computed a future injection instant, as the NIC's
  /// uncontended-link fast path does).  Chooses the earliest conflict-free
  /// injection instant given current path occupancy, applies fault
  /// injection, and schedules delivery to the destination sink.
  TxTiming transmit(Packet packet, sim::TimePoint not_before = sim::TimePoint{0});

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// Lazy route-cache counters (materialized pairs, arena sharing).
  [[nodiscard]] const RouteTableStats& route_stats() const {
    return routes_.stats();
  }

  /// Serialisation time of a packet of `payload` bytes on one link.
  [[nodiscard]] sim::Duration serialization_time(std::size_t payload) const {
    return sim::transfer_time(payload + config_.framing_bytes,
                              config_.bandwidth_mbps);
  }

 private:
  sim::Simulator& sim_;
  Topology topology_;
  NetworkConfig config_;
  RouteTable routes_;  // lazy interned per-source route cache
  std::vector<sim::TimePoint> link_free_at_;     // per-link occupancy
  std::vector<PacketSink*> sinks_;
  std::unique_ptr<FaultInjector> faults_;
  NetworkStats stats_;
};

}  // namespace nicmcast::net

// Switched-network topology and source-route computation.
//
// A topology is a graph over two vertex kinds: NIC endpoints (the leaves)
// and crossbar switches.  Myrinet uses source routing: the sending NIC knows
// the full path.  We precompute shortest paths (BFS) and hand the per-pair
// link sequence to the channel model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace nicmcast::net {

/// Index of a vertex in the topology graph (endpoints and switches share
/// one id space internally; NodeId maps onto the first `endpoint_count`
/// vertices).
using VertexId = std::uint32_t;

/// Index of a (unidirectional) link.
using LinkId = std::uint32_t;

struct LinkDesc {
  VertexId from = 0;
  VertexId to = 0;
};

/// A source route: the sequence of links a packet traverses from the source
/// NIC to the destination NIC.
using Route = std::vector<LinkId>;

class Topology {
 public:
  /// Builds an empty topology with `endpoints` NIC endpoints and no links.
  explicit Topology(std::size_t endpoints) : endpoint_count_(endpoints) {
    if (endpoints == 0) throw std::invalid_argument("topology needs >=1 node");
    vertex_count_ = static_cast<VertexId>(endpoints);
  }

  /// Adds a crossbar switch vertex and returns its id.
  VertexId add_switch() { return vertex_count_++; }

  /// Adds a bidirectional cable as two unidirectional links.
  /// Returns the id of the a->b link (the b->a link is id+1).
  LinkId add_cable(VertexId a, VertexId b) {
    check_vertex(a);
    check_vertex(b);
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(LinkDesc{a, b});
    links_.push_back(LinkDesc{b, a});
    return id;
  }

  [[nodiscard]] std::size_t endpoint_count() const { return endpoint_count_; }
  [[nodiscard]] std::size_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkDesc& link(LinkId id) const { return links_.at(id); }

  [[nodiscard]] bool is_endpoint(VertexId v) const {
    return v < endpoint_count_;
  }

  /// Computes the shortest route (fewest links) between two endpoints via
  /// BFS.  Direct endpoint-to-endpoint cables are allowed (back-to-back
  /// two-node setups).  Throws if no path exists.
  [[nodiscard]] Route route(NodeId from, NodeId to) const;

  /// All-pairs routes between endpoints; routes[i][j].
  [[nodiscard]] std::vector<std::vector<Route>> all_routes() const;

  // ---- Canned topologies ----

  /// All `n` endpoints on one crossbar switch (a Myrinet-2000 line card;
  /// the paper's 16-node cluster fits one 16-port switch).
  static Topology single_switch(std::size_t n);

  /// Two-level Clos (leaf/spine) network of `radix`-port switches, the
  /// default Myrinet wiring for larger clusters.  Each leaf switch hosts
  /// radix/2 endpoints and uplinks to radix/2 spine switches.
  static Topology clos(std::size_t n, std::size_t radix = 16);

  /// Two endpoints wired back to back (no switch).
  static Topology back_to_back();

 private:
  void check_vertex(VertexId v) const {
    if (v >= vertex_count_) throw std::out_of_range("bad vertex id");
  }

  std::size_t endpoint_count_;
  VertexId vertex_count_ = 0;
  std::vector<LinkDesc> links_;
};

}  // namespace nicmcast::net

// Switched-network topology and source-route computation.
//
// A topology is a graph over two vertex kinds: NIC endpoints (the leaves)
// and crossbar switches.  Myrinet uses source routing: the sending NIC knows
// the full path.  We precompute shortest paths (BFS) and hand the per-pair
// link sequence to the channel model.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace nicmcast::net {

/// Index of a vertex in the topology graph (endpoints and switches share
/// one id space internally; NodeId maps onto the first `endpoint_count`
/// vertices).
using VertexId = std::uint32_t;

/// Index of a (unidirectional) link.
using LinkId = std::uint32_t;

struct LinkDesc {
  VertexId from = 0;
  VertexId to = 0;
};

/// A source route: the sequence of links a packet traverses from the source
/// NIC to the destination NIC.
using Route = std::vector<LinkId>;

class Topology {
 public:
  /// Builds an empty topology with `endpoints` NIC endpoints and no links.
  /// Rejects counts the NodeId width cannot address: before NodeId was
  /// widened to 32 bits, a 65536-endpoint fabric silently wrapped endpoint
  /// ids to 0 and aliased distinct endpoints — the guard turns any future
  /// recurrence into a loud construction error instead.
  explicit Topology(std::size_t endpoints) : endpoint_count_(endpoints) {
    if (endpoints == 0) throw std::invalid_argument("topology needs >=1 node");
    if (endpoints > max_addressable_endpoints()) {
      throw std::invalid_argument(
          "topology: " + std::to_string(endpoints) +
          " endpoints exceeds the NodeId width (max " +
          std::to_string(max_addressable_endpoints()) + ")");
    }
    vertex_count_ = static_cast<VertexId>(endpoints);
  }

  /// Largest endpoint count whose ids fit NodeId, with the top id reserved
  /// for the nic::kNoNode / FabricTree::kNoParent sentinel.
  [[nodiscard]] static constexpr std::size_t max_addressable_endpoints() {
    return static_cast<std::size_t>(std::numeric_limits<NodeId>::max());
  }

  /// Adds a crossbar switch vertex and returns its id.
  VertexId add_switch() { return vertex_count_++; }

  /// Adds a bidirectional cable as two unidirectional links.
  /// Returns the id of the a->b link (the b->a link is id+1).
  LinkId add_cable(VertexId a, VertexId b) {
    check_vertex(a);
    check_vertex(b);
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(LinkDesc{a, b});
    links_.push_back(LinkDesc{b, a});
    return id;
  }

  [[nodiscard]] std::size_t endpoint_count() const { return endpoint_count_; }
  [[nodiscard]] std::size_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkDesc& link(LinkId id) const { return links_.at(id); }

  [[nodiscard]] bool is_endpoint(VertexId v) const {
    return v < endpoint_count_;
  }

  /// Computes the shortest route (fewest links) between two endpoints via
  /// BFS.  Direct endpoint-to-endpoint cables are allowed (back-to-back
  /// two-node setups).  Throws if no path exists.
  [[nodiscard]] Route route(NodeId from, NodeId to) const;

  /// All-pairs routes between endpoints; routes[i][j].  O(n^2 * hops)
  /// memory — reference implementation for tests and small topologies; the
  /// simulation data path uses the lazy interned RouteTable below.
  [[nodiscard]] std::vector<std::vector<Route>> all_routes() const;

  // ---- Canned topologies ----

  /// All `n` endpoints on one crossbar switch (a Myrinet-2000 line card;
  /// the paper's 16-node cluster fits one 16-port switch).
  static Topology single_switch(std::size_t n);

  /// Two-level Clos (leaf/spine) network of `radix`-port switches, the
  /// default Myrinet wiring for larger clusters.  Each leaf switch hosts
  /// radix/2 endpoints and uplinks to radix/2 spine switches.
  static Topology clos(std::size_t n, std::size_t radix = 16);

  /// Two endpoints wired back to back (no switch).
  static Topology back_to_back();

 private:
  void check_vertex(VertexId v) const {
    if (v >= vertex_count_) throw std::out_of_range("bad vertex id");
  }

  std::size_t endpoint_count_;
  VertexId vertex_count_ = 0;
  std::vector<LinkDesc> links_;
};

/// Observability counters for RouteTable (surfaced per run through
/// harness::EngineCounters so the scale benches can record route memory).
struct RouteTableStats {
  std::uint64_t routes_materialized = 0;  // distinct (src, dst) pairs computed
  std::uint64_t sources_touched = 0;      // sources with >= 1 route
  std::uint64_t links_stored = 0;         // LinkIds held across all arenas
  std::uint64_t links_shared = 0;         // LinkIds reused via interned spans
};

/// A materialized source route: a view over (up to) two contiguous spans of
/// a RouteTable arena — an interned shared prefix (the path to the last
/// switch, shared by every destination behind it) plus this destination's
/// tail links.  Offsets into the owning arena stay valid as the arena grows,
/// so views remain usable across later route() calls on the same table.
class RouteView {
 public:
  RouteView() = default;
  [[nodiscard]] std::size_t size() const { return head_len_ + tail_len_; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] LinkId operator[](std::size_t i) const {
    return i < head_len_ ? (*arena_)[head_off_ + i]
                         : (*arena_)[tail_off_ + (i - head_len_)];
  }
  /// Materializes a plain Route (tests/debugging; the data path never does).
  [[nodiscard]] Route to_route() const {
    Route r;
    r.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) r.push_back((*this)[i]);
    return r;
  }

 private:
  friend class RouteTable;
  RouteView(const std::vector<LinkId>* arena, std::uint32_t head_off,
            std::uint32_t head_len, std::uint32_t tail_off,
            std::uint32_t tail_len)
      : arena_(arena),
        head_off_(head_off),
        head_len_(head_len),
        tail_off_(tail_off),
        tail_len_(tail_len) {}
  const std::vector<LinkId>* arena_ = nullptr;
  std::uint32_t head_off_ = 0;
  std::uint32_t head_len_ = 0;
  std::uint32_t tail_off_ = 0;
  std::uint32_t tail_len_ = 0;
};

/// Lazy, interned source-route cache replacing the old eagerly-built
/// all-pairs `vector<vector<Route>>` (O(n^2 * hops) memory and setup time —
/// the scaling blocker for 4096-node fabrics).
///
/// Routes are computed on first use of a (src, dst) pair by an incremental
/// per-source BFS whose exploration order is bit-identical to
/// Topology::route()'s, so extracted routes — and therefore injection
/// timings and the event order — never change.  Per source, routes live in
/// a compressed arena: the path to a destination's last switch is interned
/// once (keyed by switch vertex) and shared by every destination behind it;
/// each additional destination stores only its tail links.  The BFS
/// predecessor tree of the most recently used source is kept warm and
/// extended on demand, so bursts of lookups from one source (a multicast
/// fan-out, an ack storm converging on the root) pay one traversal.
class RouteTable {
 public:
  explicit RouteTable(const Topology& topology) : topo_(&topology) {}

  /// The (possibly cached) route from `from` to `to`.  Lazy: first use
  /// materializes, later uses are a hash lookup.  Throws like
  /// Topology::route on bad ids or unreachable destinations.
  [[nodiscard]] RouteView route(NodeId from, NodeId to);

  [[nodiscard]] const RouteTableStats& stats() const { return stats_; }

 private:
  struct Span {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  struct Entry {
    Span head;  // interned shared prefix (may be empty)
    Span tail;  // this destination's own links
  };
  struct SourceRoutes {
    std::vector<LinkId> arena;
    std::unordered_map<NodeId, Entry> by_dst;
    std::unordered_map<VertexId, Span> prefix_of;  // switch -> interned span
  };

  RouteView view_of(const SourceRoutes& sr, const Entry& e) const {
    return RouteView(&sr.arena, e.head.off, e.head.len, e.tail.off,
                     e.tail.len);
  }

  void start_bfs(NodeId from);
  void extend_bfs(NodeId to);
  RouteView materialize(NodeId from, NodeId to, SourceRoutes& sr);

  const Topology* topo_;
  std::vector<std::unique_ptr<SourceRoutes>> sources_;  // lazily allocated
  std::vector<std::vector<LinkId>> adjacency_;  // built once, on first use
  // Incremental BFS state for the most recently used source: prev_/via_
  // hold its (partial) predecessor tree; frontier_head_ indexes the FIFO.
  std::uint32_t bfs_source_ = 0;
  bool bfs_valid_ = false;
  std::vector<LinkId> via_;
  std::vector<VertexId> prev_;
  std::vector<VertexId> frontier_;
  std::size_t frontier_head_ = 0;
  RouteTableStats stats_;
};

}  // namespace nicmcast::net

#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nicmcast::net {

Network::Network(sim::Simulator& sim, Topology topology, NetworkConfig config)
    : sim_(sim),
      topology_(std::move(topology)),
      config_(config),
      routes_(topology_),
      link_free_at_(topology_.link_count(), sim::TimePoint{0}),
      sinks_(topology_.endpoint_count(), nullptr),
      faults_(std::make_unique<NoFaults>()) {}

void Network::attach(NodeId node, PacketSink& sink) {
  if (node >= sinks_.size()) throw std::out_of_range("attach: bad node id");
  sinks_[node] = &sink;
}

void Network::set_fault_injector(std::unique_ptr<FaultInjector> injector) {
  if (!injector) throw std::invalid_argument("null fault injector");
  faults_ = std::move(injector);
}

Network::TxTiming Network::transmit(Packet packet,
                                    sim::TimePoint not_before) {
  const NodeId src = packet.header.src;
  const NodeId dst = packet.header.dst;
  if (src >= sinks_.size() || dst >= sinks_.size()) {
    throw std::out_of_range("transmit: bad endpoint id");
  }
  if (src == dst) {
    throw std::logic_error("transmit: NIC loopback is handled in the NIC, "
                           "not the network");
  }

  const RouteView path = routes_.route(src, dst);
  const std::size_t wire_size = packet.wire_size(config_.framing_bytes);
  const sim::Duration ser =
      sim::transfer_time(wire_size, config_.bandwidth_mbps);
  const sim::Duration hop = config_.hop_latency;

  sim::TimePoint inject = std::max(sim_.now(), not_before);
  if (wire_size > config_.small_packet_bypass_bytes) {
    // Earliest injection instant at which the packet head finds every link
    // on the path free when it arrives there (wormhole cut-through).
    for (std::size_t i = 0; i < path.size(); ++i) {
      const sim::TimePoint needed =
          link_free_at_[path[i]] - hop * static_cast<std::int64_t>(i);
      inject = std::max(inject, needed);
    }
    // Occupy each link for the serialisation window, staggered per hop.
    for (std::size_t i = 0; i < path.size(); ++i) {
      link_free_at_[path[i]] =
          inject + hop * static_cast<std::int64_t>(i) + ser;
    }
  }
  // else: control-sized packet — flit-interleaved, no path reservation.

  const sim::TimePoint tx_done = inject + ser;
  const sim::TimePoint arrival =
      inject + hop * static_cast<std::int64_t>(path.size()) + ser;

  ++stats_.packets_injected;

  const FaultAction fault = faults_->on_packet(packet);
  TxTiming timing{tx_done, arrival, false};
  if (fault == FaultAction::kDrop) {
    ++stats_.packets_dropped;
    if (sim_.tracer().enabled("net")) {
      sim_.tracer().emit(sim_.now(), "net", "fabric",
                         "DROP " + packet.describe());
    }
    return timing;
  }
  if (fault == FaultAction::kCorrupt) {
    ++stats_.packets_corrupted;
    packet.corrupted = true;
  }

  PacketSink* sink = sinks_[dst];
  if (sink == nullptr) {
    throw std::logic_error("transmit: no sink attached at node " +
                           std::to_string(dst));
  }

  timing.delivered = true;
  stats_.payload_bytes_delivered += packet.payload_size();
  ++stats_.packets_delivered;

  if (sim_.tracer().enabled("net")) {
    sim_.tracer().emit(sim_.now(), "net", "fabric",
                       "XMIT " + packet.describe() + " arrival=" +
                           std::to_string(arrival.microseconds()) + "us");
  }

  sim_.schedule_at(arrival, [sink, p = std::move(packet)]() mutable {
    sink->packet_arrived(std::move(p));
  });
  return timing;
}

}  // namespace nicmcast::net

// GM registered (DMA-able) memory model.
//
// GM can only send from and receive into registered memory, and the paper's
// forwarding design relies on this: the receive-side replica must stay
// registered until every child has acknowledged (it is the retransmission
// source).  We model registration as an explicit, costed operation and keep
// a pin count of in-flight NIC operations so that premature deregistration
// is a detectable program error rather than silent corruption.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nic/types.hpp"

namespace nicmcast::gm {

using nic::Payload;

class Region {
 public:
  explicit Region(std::size_t size) : data_(size) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] Payload& data() { return data_; }
  [[nodiscard]] const Payload& data() const { return data_; }

  [[nodiscard]] bool registered() const { return registered_; }
  [[nodiscard]] std::size_t pin_count() const { return pins_; }

 private:
  friend class MemoryRegistry;
  Payload data_;
  bool registered_ = false;
  std::size_t pins_ = 0;
};

using RegionRef = std::shared_ptr<Region>;

/// Per-port registration book-keeping.
class MemoryRegistry {
 public:
  RegionRef allocate(std::size_t size) {
    return std::make_shared<Region>(size);
  }

  void register_region(const RegionRef& region) {
    if (!region) throw std::invalid_argument("null region");
    if (region->registered_) {
      throw std::logic_error("region already registered");
    }
    region->registered_ = true;
    bytes_registered_ += region->size();
  }

  void deregister_region(const RegionRef& region) {
    if (!region || !region->registered_) {
      throw std::logic_error("deregistering an unregistered region");
    }
    if (region->pins_ > 0) {
      throw std::logic_error(
          "deregistering memory with " + std::to_string(region->pins_) +
          " NIC operation(s) in flight — GM requires the replica to stay "
          "registered until all acknowledgments arrive");
    }
    region->registered_ = false;
    bytes_registered_ -= region->size();
  }

  /// Marks the region as in use by an in-flight NIC operation.
  void pin(const RegionRef& region) {
    if (!region->registered_) {
      throw std::logic_error("DMA from unregistered memory");
    }
    ++region->pins_;
  }

  void unpin(const RegionRef& region) {
    if (region->pins_ == 0) throw std::logic_error("unpin underflow");
    --region->pins_;
  }

  [[nodiscard]] std::size_t bytes_registered() const {
    return bytes_registered_;
  }

 private:
  std::size_t bytes_registered_ = 0;
};

}  // namespace nicmcast::gm

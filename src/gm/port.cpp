#include "gm/port.hpp"

#include <stdexcept>
#include <utility>

namespace nicmcast::gm {

Port::Port(sim::Simulator& sim, nic::Nic& nic, net::PortId port_id)
    : sim_(sim), nic_(nic), port_id_(port_id) {
  if (port_id >= nic.num_ports()) {
    throw std::out_of_range("Port: NIC has no such port");
  }
  pump_process_ = sim_.spawn(pump(), "gm-pump");
}

// Demultiplexes the NIC event queue: completions resolve their operation's
// trigger; received messages go to the inbox.
sim::Task<void> Port::pump() {
  for (;;) {
    nic::HostEvent event = co_await nic_.events(port_id_).pop();
    switch (event.type) {
      case nic::HostEvent::Type::kSendComplete:
      case nic::HostEvent::Type::kMultisendComplete:
      case nic::HostEvent::Type::kMcastSendComplete:
      case nic::HostEvent::Type::kBarrierDone:
      case nic::HostEvent::Type::kReduceDone:
      case nic::HostEvent::Type::kSendFailed: {
        auto it = pending_.find(event.handle);
        if (it == pending_.end()) {
          throw std::logic_error("completion for unknown operation");
        }
        OpState& op = *it->second;
        op.status = event.type == nic::HostEvent::Type::kSendFailed
                        ? SendStatus::kFailed
                        : SendStatus::kOk;
        if (op.status == SendStatus::kFailed) ++stats_.failed_sends;
        if (op.pinned) memory_.unpin(op.pinned);
        op.result = std::move(event.data);
        op.done.fire();
        // A completed operation returned its send token.
        token_freed_.release();
        break;
      }
      case nic::HostEvent::Type::kRecvComplete:
      case nic::HostEvent::Type::kMcastRecvComplete: {
        ++stats_.receives;
        RecvMessage msg;
        msg.src = event.src;
        msg.src_port = event.src_port;
        msg.group = event.group;
        msg.tag = event.tag;
        msg.data = std::move(event.data);
        inbox_.push(std::move(msg));
        break;
      }
    }
  }
}

sim::Task<void> Port::wait_for_send_token() {
  while (nic_.send_tokens_available(port_id_) <= tokens_reserved_) {
    ++stats_.token_stalls;
    co_await token_freed_.wait();
  }
}

sim::Task<SendStatus> Port::await_completion(nic::OpHandle handle) {
  auto op = std::make_unique<OpState>();
  OpState& state = *op;
  pending_.emplace(handle, std::move(op));
  co_await state.done.wait();
  const SendStatus status = state.status;
  pending_.erase(handle);
  co_return status;
}

nic::OpHandle Port::post_send_nowait(net::NodeId dest, net::PortId dest_port,
                                     Payload data, std::uint32_t tag) {
  if (nic_.send_tokens_available(port_id_) <= tokens_reserved_) {
    throw std::logic_error("post_send_nowait: no free send token — use the "
                           "blocking send() to wait for one");
  }
  ++tokens_reserved_;  // held until the posted event reaches the NIC
  ++stats_.sends;
  const nic::OpHandle handle = new_handle();
  // Register completion state before the NIC can possibly report back.
  pending_.emplace(handle, std::make_unique<OpState>());
  // The posted event crosses the PCI bus asynchronously; the host moves on.
  sim_.schedule_after(
      nic_.config().host_to_nic_delay,
      [this, dest, dest_port, data = std::move(data), tag, handle]() mutable {
        --tokens_reserved_;
        nic_.post_send(nic::SendRequest{port_id_, dest, dest_port,
                                        std::move(data), tag, handle});
      });
  return handle;
}

sim::Task<SendStatus> Port::wait_completion(nic::OpHandle handle) {
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    throw std::logic_error("wait_completion: unknown handle");
  }
  OpState& state = *it->second;
  co_await state.done.wait();
  const SendStatus status = state.status;
  pending_.erase(handle);
  co_return status;
}

sim::Task<SendStatus> Port::send(net::NodeId dest, net::PortId dest_port,
                                 Payload data, std::uint32_t tag) {
  ++stats_.sends;
  if (dest == nic_.id()) {
    // Loopback: GM short-circuits self-sends in the library with a host
    // memcpy; the NIC and the wire are never involved.
    if (dest_port != port_id_) {
      throw std::logic_error("loopback to a different port is unsupported");
    }
    co_await sim_.wait(nic_.config().host_post_overhead +
                       sim::transfer_time(data.size(),
                                          nic_.config().host_dma_mbps));
    RecvMessage msg;
    msg.src = nic_.id();
    msg.src_port = port_id_;
    msg.tag = tag;
    msg.data = std::move(data);
    ++stats_.receives;
    inbox_.push(std::move(msg));
    co_return SendStatus::kOk;
  }
  // Host-side: build the send event, cross the PCI bus.
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  co_await wait_for_send_token();
  const nic::OpHandle handle = new_handle();
  nic_.post_send(
      nic::SendRequest{port_id_, dest, dest_port, std::move(data), tag,
                       handle});
  co_return co_await await_completion(handle);
}

sim::Task<SendStatus> Port::send_from(RegionRef region, net::NodeId dest,
                                      net::PortId dest_port,
                                      std::uint32_t tag) {
  memory_.pin(region);  // throws on unregistered memory
  ++stats_.sends;
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  co_await wait_for_send_token();
  const nic::OpHandle handle = new_handle();
  nic_.post_send(nic::SendRequest{port_id_, dest, dest_port, region->data(),
                                  tag, handle});
  auto op = std::make_unique<OpState>();
  op->pinned = std::move(region);
  OpState& state = *op;
  pending_.emplace(handle, std::move(op));
  co_await state.done.wait();
  const SendStatus status = state.status;
  pending_.erase(handle);
  co_return status;
}

sim::Task<SendStatus> Port::multisend(std::vector<net::NodeId> dests,
                                      net::PortId dest_port, Payload data,
                                      std::uint32_t tag) {
  ++stats_.multisends;
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  co_await wait_for_send_token();
  const nic::OpHandle handle = new_handle();
  nic_.post_multisend(nic::MultisendRequest{
      port_id_, std::move(dests), dest_port, std::move(data), tag, handle});
  co_return co_await await_completion(handle);
}

sim::Task<SendStatus> Port::mcast_send(net::GroupId group, Payload data,
                                       std::uint32_t tag) {
  ++stats_.mcast_sends;
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  co_await wait_for_send_token();
  const nic::OpHandle handle = new_handle();
  nic_.post_mcast_send(
      nic::McastSendRequest{port_id_, group, std::move(data), tag, handle});
  co_return co_await await_completion(handle);
}

sim::Task<void> Port::nic_barrier(net::GroupId group) {
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  const nic::OpHandle handle = new_handle();
  nic_.post_barrier(port_id_, group, handle);
  const SendStatus status = co_await await_completion(handle);
  if (status != SendStatus::kOk) {
    throw std::runtime_error("nic_barrier failed (parent unreachable)");
  }
}

sim::Task<Payload> Port::nic_reduce(net::GroupId group, Payload data) {
  co_await sim_.wait(nic_.config().host_post_overhead +
                     nic_.config().host_to_nic_delay);
  const nic::OpHandle handle = new_handle();
  auto op = std::make_unique<OpState>();
  OpState& state = *op;
  pending_.emplace(handle, std::move(op));
  nic_.post_reduce(port_id_, group, std::move(data), handle);
  co_await state.done.wait();
  const SendStatus status = state.status;
  Payload result = std::move(state.result);
  pending_.erase(handle);
  if (status != SendStatus::kOk) {
    throw std::runtime_error("nic_reduce failed (parent unreachable)");
  }
  co_return result;
}

sim::Task<RecvMessage> Port::receive() {
  RecvMessage msg = co_await inbox_.pop();
  co_return msg;
}

void Port::provide_receive_buffer(std::size_t capacity) {
  nic_.post_recv_buffer(nic::RecvBuffer{port_id_, capacity, 0});
}

void Port::provide_receive_buffers(std::size_t count, std::size_t capacity) {
  for (std::size_t i = 0; i < count; ++i) provide_receive_buffer(capacity);
}

void Port::set_group(net::GroupId group, nic::GroupEntry entry) {
  entry.port = port_id_;
  nic_.set_group(group, std::move(entry));
}

}  // namespace nicmcast::gm

// Cluster builder: simulator + network + one NIC per node + GM ports.
//
// The entry point for examples, tests and benchmarks: constructs the whole
// simulated testbed (the paper's was 16 quad-Pentium-III nodes on a
// Myrinet-2000 Clos network) in a couple of lines.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "gm/port.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::gm {

struct ClusterConfig {
  std::size_t nodes = 16;
  enum class Wiring { kSingleSwitch, kClos, kBackToBack } wiring =
      Wiring::kSingleSwitch;
  std::size_t switch_radix = 16;
  net::NetworkConfig network;
  nic::NicConfig nic;
  nic::NicOptions nic_options;
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nics_.size(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] nic::Nic& nic(std::size_t node) { return *nics_.at(node); }

  /// GM port `port_id` on `node`, opened on first use.
  [[nodiscard]] Port& port(std::size_t node, net::PortId port_id = 0);

  /// Spawns `program(cluster, node)` on every node and returns the handles.
  /// The callable is kept alive by the Cluster: a coroutine lambda's
  /// captures live in its closure object, which the spawned coroutines keep
  /// referencing until they complete.
  std::vector<sim::ProcessRef> run_on_all(
      std::function<sim::Task<void>(Cluster&, net::NodeId)> program);

  /// Runs the simulator until every spawned process completes (or nothing
  /// is left to do), then surfaces any process failure.
  void run() { sim_.run(); }

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<nic::Nic>> nics_;
  // ports_[node * num_ports + port_id], opened lazily.
  std::vector<std::unique_ptr<Port>> ports_;
  // Programs given to run_on_all; their closures must outlive the spawned
  // coroutines that reference them.
  std::deque<std::function<sim::Task<void>(Cluster&, net::NodeId)>> programs_;
};

}  // namespace nicmcast::gm

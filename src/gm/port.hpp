// The GM user-level API: a port with blocking (coroutine) send/receive.
//
// This is the layer application code and the mini-MPI are written against.
// It mirrors how MPICH-GM uses GM: OS-bypass ports, registered memory,
// pre-posted receive buffers, an event queue the host polls, and — new in
// this work — multisend and multicast send operations.
//
// Blocking semantics: `co_await port.send(...)` suspends the calling
// simulated process until the NIC reports completion (all packets
// acknowledged).  `co_await port.receive()` suspends until a message lands
// in host memory.  A per-port pump process demultiplexes the NIC's event
// queue into per-operation triggers and a receive mailbox.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "gm/registered_memory.hpp"
#include "nic/nic.hpp"
#include "sim/flat_map.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::gm {

enum class SendStatus : std::uint8_t { kOk, kFailed };

/// A message delivered to the host.
struct RecvMessage {
  net::NodeId src = 0;
  net::PortId src_port = 0;
  net::GroupId group = net::kNoGroup;  // kNoGroup for point-to-point
  std::uint32_t tag = 0;
  Payload data;

  [[nodiscard]] bool is_multicast() const { return group != net::kNoGroup; }
};

struct PortStats {
  std::uint64_t sends = 0;
  std::uint64_t multisends = 0;
  std::uint64_t mcast_sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t failed_sends = 0;
  std::uint64_t token_stalls = 0;  // times a send waited for a free token
};

class Port {
 public:
  Port(sim::Simulator& sim, nic::Nic& nic, net::PortId port_id);
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  [[nodiscard]] net::NodeId node() const { return nic_.id(); }
  [[nodiscard]] net::PortId port_id() const { return port_id_; }
  [[nodiscard]] nic::Nic& nic() { return nic_; }
  [[nodiscard]] const PortStats& stats() const { return stats_; }
  [[nodiscard]] MemoryRegistry& memory() { return memory_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  // ---- Blocking operations (call from a simulated process) ----

  /// Sends `data` to (dest, dest_port); completes when every packet is
  /// acknowledged.  Waits for a free send token if the pool is empty.
  sim::Task<SendStatus> send(net::NodeId dest, net::PortId dest_port,
                             Payload data, std::uint32_t tag = 0);

  /// NIC-based multisend: replicas to every destination, one host posting
  /// and one host->NIC DMA per packet.
  sim::Task<SendStatus> multisend(std::vector<net::NodeId> dests,
                                  net::PortId dest_port, Payload data,
                                  std::uint32_t tag = 0);

  /// NIC-based multicast over a preposted group tree (root only).
  sim::Task<SendStatus> mcast_send(net::GroupId group, Payload data,
                                   std::uint32_t tag = 0);

  /// NIC-level barrier over `group`'s tree (extension; paper §7): the NICs
  /// gather arrivals and the root's NIC releases everyone — the host only
  /// enters and leaves.  Throws on failure (unreachable parent).
  sim::Task<void> nic_barrier(net::GroupId group);

  /// NIC-level reduction (extension; paper §7): contributes a vector of
  /// 8-byte integer lanes; the NICs fold contributions up `group`'s tree.
  /// Returns the cluster-wide sum at the tree root, an empty payload
  /// elsewhere.  Throws on failure.
  sim::Task<Payload> nic_reduce(net::GroupId group, Payload data);

  /// Next message delivered to this port, in arrival order.
  sim::Task<RecvMessage> receive();

  /// Registered-memory variant: sends from a registered region, keeping it
  /// pinned until the NIC completes (premature deregistration throws).
  sim::Task<SendStatus> send_from(RegionRef region, net::NodeId dest,
                                  net::PortId dest_port,
                                  std::uint32_t tag = 0);

  // ---- Non-blocking operations ----

  /// Posts a send without blocking (the gm_send_with_callback pattern
  /// MPICH-GM uses to fan out to several children back to back).  The
  /// caller should charge its own host overhead (`sim.wait(host_post)`)
  /// between posts and later `co_await wait_completion(handle)`.
  /// Throws std::logic_error when no send token is free.
  nic::OpHandle post_send_nowait(net::NodeId dest, net::PortId dest_port,
                                 Payload data, std::uint32_t tag = 0);

  /// Completion of an operation started with post_send_nowait.
  sim::Task<SendStatus> wait_completion(nic::OpHandle handle);

  /// True when post_send_nowait would succeed right now (a send token is
  /// free and not already reserved by an in-flight nowait post).
  [[nodiscard]] bool can_post_nowait() const {
    return nic_.send_tokens_available(port_id_) > tokens_reserved_;
  }

  /// Pre-posts a receive buffer of `capacity` bytes (a receive token).
  void provide_receive_buffer(std::size_t capacity);
  /// Convenience: posts `count` buffers.
  void provide_receive_buffers(std::size_t count, std::size_t capacity);

  /// Writes this node's spanning-tree entry for `group` into the NIC group
  /// table (tree construction happened at the host; paper §5).
  void set_group(net::GroupId group, nic::GroupEntry entry);
  [[nodiscard]] bool has_group(net::GroupId group) const {
    return nic_.has_group(group);
  }
  void remove_group(net::GroupId group) { nic_.remove_group(group); }

  /// Messages received but not yet claimed by receive().
  [[nodiscard]] std::size_t pending_messages() const {
    return inbox_.size();
  }

 private:
  struct OpState {
    sim::Trigger done;
    SendStatus status = SendStatus::kOk;
    RegionRef pinned;  // registered-memory sends keep their region pinned
    Payload result;    // reduction result (root side of nic_reduce)
  };

  sim::Task<SendStatus> await_completion(nic::OpHandle handle);
  sim::Task<void> wait_for_send_token();
  sim::Task<void> pump();
  nic::OpHandle new_handle() { return next_handle_++; }

  sim::Simulator& sim_;
  nic::Nic& nic_;
  net::PortId port_id_;
  MemoryRegistry memory_;

  sim::Channel<RecvMessage> inbox_;
  // Flat table (sim/flat_map.hpp): the pump hits this once per NIC event.
  sim::FlatMap<nic::OpHandle, std::unique_ptr<OpState>> pending_;
  sim::Gate token_freed_;
  std::size_t tokens_reserved_ = 0;  // nowait posts still crossing the bus
  nic::OpHandle next_handle_ = 1;  // 0 is the NIC's "no handle" sentinel
  PortStats stats_;
  sim::ProcessRef pump_process_;
};

}  // namespace nicmcast::gm

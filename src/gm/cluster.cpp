#include "gm/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace nicmcast::gm {

namespace {

net::Topology build_topology(const ClusterConfig& config) {
  switch (config.wiring) {
    case ClusterConfig::Wiring::kSingleSwitch:
      return net::Topology::single_switch(config.nodes);
    case ClusterConfig::Wiring::kClos:
      return net::Topology::clos(config.nodes, config.switch_radix);
    case ClusterConfig::Wiring::kBackToBack:
      if (config.nodes != 2) {
        throw std::invalid_argument("back-to-back wiring needs 2 nodes");
      }
      return net::Topology::back_to_back();
  }
  throw std::logic_error("unknown wiring");
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), sim_(config.seed) {
  network_ = std::make_unique<net::Network>(sim_, build_topology(config_),
                                            config_.network);
  // Default the NIC connection-table hint to the realistic per-node peer
  // population (tree fan-in/out plus unicast traffic), capped so large
  // fabrics don't pre-reserve quadratic state.
  nic::NicConfig nic_config = config_.nic;
  if (nic_config.expected_peers == 0) {
    nic_config.expected_peers = std::min<std::size_t>(config_.nodes, 64);
  }
  nics_.reserve(config_.nodes);
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    nics_.push_back(std::make_unique<nic::Nic>(
        sim_, *network_, static_cast<net::NodeId>(i), nic_config,
        config_.nic_options));
  }
  ports_.resize(config_.nodes * config_.nic_options.num_ports);
}

Port& Cluster::port(std::size_t node, net::PortId port_id) {
  if (node >= nics_.size() || port_id >= config_.nic_options.num_ports) {
    throw std::out_of_range("Cluster::port: bad node or port id");
  }
  auto& slot = ports_[node * config_.nic_options.num_ports + port_id];
  if (!slot) {
    slot = std::make_unique<Port>(sim_, *nics_[node], port_id);
  }
  return *slot;
}

std::vector<sim::ProcessRef> Cluster::run_on_all(
    std::function<sim::Task<void>(Cluster&, net::NodeId)> program) {
  programs_.push_back(std::move(program));
  const auto& stored = programs_.back();
  std::vector<sim::ProcessRef> handles;
  handles.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    handles.push_back(sim_.spawn(stored(*this, static_cast<net::NodeId>(i)),
                                 "node" + std::to_string(i)));
  }
  return handles;
}

}  // namespace nicmcast::gm

// GM-level broadcast/multicast drivers.
//
// host_bcast — the traditional baseline: every tree node's *host* receives
// the message, returns from its blocking receive, and re-posts sends to its
// children (two extra PCI crossings and a host wakeup per hop).
//
// nic_bcast — the paper's scheme: the root posts one NIC-based multicast
// send; intermediate NICs forward from the group table without host
// involvement; hosts just collect the delivered message.
//
// install_group — programs every member NIC's group table from a Tree (the
// benchmark/test path; the MPI layer does the same thing demand-driven via
// setup messages).
#pragma once

#include <cstdint>

#include "gm/cluster.hpp"
#include "gm/port.hpp"
#include "mcast/tree.hpp"

namespace nicmcast::mcast {

/// Programs `tree`'s entry into every member NIC's group table.
void install_group(gm::Cluster& cluster, const Tree& tree,
                   net::GroupId group, net::PortId port = 0);

/// Runs one node's part of a host-based broadcast along `tree`.
/// The root passes the payload; every other member receives it (a receive
/// buffer must be pre-posted) and forwards to its children.  Returns the
/// message payload on every node.
sim::Task<gm::Payload> host_bcast(gm::Port& port, const Tree& tree,
                                  gm::Payload data, std::uint32_t tag = 0);

/// Runs one node's part of a NIC-based multicast for `group`.
/// The root posts a single multicast send; everyone else blocks on the
/// delivered message.  Returns the payload on every node.
sim::Task<gm::Payload> nic_bcast(gm::Port& port, const Tree& tree,
                                 net::GroupId group, gm::Payload data,
                                 std::uint32_t tag = 0);

}  // namespace nicmcast::mcast

#include "mcast/postal_tree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace nicmcast::mcast {

namespace {

struct WireCosts {
  std::size_t packets;
  sim::Duration message_wire_time;   // serialisation of every packet
  sim::Duration first_packet_wire;   // serialisation of the first packet
  sim::Duration path_latency;        // switch hops
};

WireCosts wire_costs(std::size_t message_bytes, const nic::NicConfig& nic,
                     const net::NetworkConfig& net) {
  const std::size_t max_pkt = nic.max_packet_payload;
  const std::size_t packets =
      message_bytes == 0 ? 1 : (message_bytes + max_pkt - 1) / max_pkt;
  sim::Duration total{0};
  std::size_t remaining = message_bytes;
  sim::Duration first{0};
  for (std::size_t p = 0; p < packets; ++p) {
    const std::size_t chunk = std::min(max_pkt, remaining);
    const sim::Duration w =
        sim::transfer_time(chunk + net.framing_bytes, net.bandwidth_mbps);
    if (p == 0) first = w;
    total += w;
    remaining -= chunk;
  }
  // Single-switch fabric: two hops endpoint->switch->endpoint.
  return WireCosts{packets, total, first, net.hop_latency * 2};
}

sim::Duration dma_time(std::size_t bytes, const nic::NicConfig& nic) {
  return nic.dma_startup + nic.per_packet_processing +
         sim::transfer_time(bytes, nic.host_dma_mbps);
}

}  // namespace

PostalCostModel PostalCostModel::nic_based(std::size_t message_bytes,
                                           const nic::NicConfig& nic,
                                           const net::NetworkConfig& net) {
  const WireCosts wire = wire_costs(message_bytes, nic, net);
  PostalCostModel model;
  // g: the descriptor-callback replica chain pays a header rewrite plus the
  // full message serialisation per extra destination.
  model.gap = wire.message_wire_time +
              nic.header_rewrite * static_cast<std::int64_t>(wire.packets);
  // L: posting + token processing + first-packet DMA, the wire, then the
  // receive-side processing after which the intermediate NIC can forward
  // (it forwards per packet, so only the first packet's landing matters,
  // but it must finish *receiving* the whole message to have sent it on —
  // use the full message wire time as the stream cost).
  model.latency = nic.host_post_overhead + nic.host_to_nic_delay +
                  nic.send_token_processing +
                  dma_time(std::min<std::size_t>(message_bytes,
                                                 nic.max_packet_payload),
                           nic) +
                  wire.message_wire_time + wire.path_latency +
                  nic.recv_packet_processing + nic.header_rewrite;
  return model;
}

PostalCostModel PostalCostModel::host_based(std::size_t message_bytes,
                                            const nic::NicConfig& nic,
                                            const net::NetworkConfig& net) {
  const WireCosts wire = wire_costs(message_bytes, nic, net);
  PostalCostModel model;
  // g: a full send-token processing per destination, pipelined against the
  // DMA and the wire — the slowest stage dominates.
  const sim::Duration per_packet_dma =
      dma_time(std::min<std::size_t>(message_bytes, nic.max_packet_payload),
               nic);
  model.gap = std::max(
      {nic.send_token_processing,
       per_packet_dma * static_cast<std::int64_t>(wire.packets),
       wire.message_wire_time});
  // L: the receiver's host must see the complete message, return from its
  // blocking receive and post new sends before it can forward.
  model.latency = nic.host_post_overhead + nic.host_to_nic_delay +
                  nic.send_token_processing + per_packet_dma +
                  wire.message_wire_time + wire.path_latency +
                  nic.recv_packet_processing +
                  dma_time(message_bytes, nic) +  // RDMA to host memory
                  nic.event_delivery + nic.host_post_overhead;
  return model;
}

Tree build_postal_tree(net::NodeId root, std::vector<net::NodeId> dests,
                       const PostalCostModel& cost) {
  dests = normalize_destinations(root, std::move(dests));
  Tree tree(root);
  const sim::Duration gap = std::max(cost.gap, sim::nsec(1));
  // Postal model: latency includes the send gap (L >= g).  Without the
  // clamp, pipelined large messages (per-hop latency below the per-message
  // gap) would degenerate into chains instead of doubling trees.
  const sim::Duration latency = std::max(cost.latency, gap);

  // The paper's fan-out rule: a node sends to at most ceil(L/g) further
  // destinations — the number it can reach before its first receiver is
  // ready to take over.  The cap keeps mid-size messages (lambda near 1)
  // on binomial-like shapes instead of letting the greedy schedule pile
  // children onto the root.
  const double lambda = latency / gap;
  const std::size_t fanout_cap = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(lambda)));

  // (next send completion time, node); ties broken by node id so runs are
  // deterministic.
  struct Sender {
    sim::TimePoint ready;
    net::NodeId node;
    bool operator>(const Sender& other) const {
      if (ready != other.ready) return ready > other.ready;
      return node > other.node;
    }
  };
  std::priority_queue<Sender, std::vector<Sender>, std::greater<>> senders;
  senders.push(Sender{sim::TimePoint{0}, root});
  std::unordered_map<net::NodeId, std::size_t> child_count;

  for (net::NodeId dest : dests) {
    Sender s = senders.top();
    senders.pop();
    tree.add_edge(s.node, dest);
    // The new destination can start sending after the message lands.
    senders.push(Sender{s.ready + latency, dest});
    // The sender can reach one more destination after `gap`, until it hits
    // the fan-out cap.
    if (++child_count[s.node] < fanout_cap) {
      senders.push(Sender{s.ready + gap, s.node});
    }
  }
  return tree;
}

}  // namespace nicmcast::mcast

#include "mcast/bcast.hpp"

#include <stdexcept>

namespace nicmcast::mcast {

void install_group(gm::Cluster& cluster, const Tree& tree, net::GroupId group,
                   net::PortId port) {
  tree.validate();
  for (net::NodeId node : tree.nodes()) {
    cluster.port(node, port).set_group(group, tree.entry_for(node, port));
  }
}

sim::Task<gm::Payload> host_bcast(gm::Port& port, const Tree& tree,
                                  gm::Payload data, std::uint32_t tag) {
  const net::NodeId me = port.node();
  if (!tree.contains(me)) {
    throw std::logic_error("host_bcast: node not in tree");
  }
  if (me != tree.root()) {
    // Blocking receive: the host must be in the call before it can forward
    // — exactly the skew sensitivity the NIC-based scheme removes.
    gm::RecvMessage msg = co_await port.receive();
    if (msg.tag != tag) {
      throw std::logic_error("host_bcast: unexpected message tag");
    }
    data = std::move(msg.data);
  }
  // Host-based forwarding: post one unicast per child back to back (the
  // MPICH-GM pattern — each posting costs < 1us of host time), then wait
  // for all of them to be acknowledged.
  std::vector<nic::OpHandle> handles;
  for (net::NodeId child : tree.children(me)) {
    co_await port.simulator().wait(port.nic().config().host_post_overhead);
    handles.push_back(port.post_send_nowait(child, port.port_id(), data, tag));
  }
  for (nic::OpHandle h : handles) {
    const gm::SendStatus status = co_await port.wait_completion(h);
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("host_bcast: send failed");
    }
  }
  co_return data;
}

sim::Task<gm::Payload> nic_bcast(gm::Port& port, const Tree& tree,
                                 net::GroupId group, gm::Payload data,
                                 std::uint32_t tag) {
  const net::NodeId me = port.node();
  if (!tree.contains(me)) {
    throw std::logic_error("nic_bcast: node not in tree");
  }
  if (me == tree.root()) {
    // The NIC takes a copy across the PCI bus; the root keeps its payload.
    const gm::SendStatus status = co_await port.mcast_send(group, data, tag);
    if (status != gm::SendStatus::kOk) {
      throw std::runtime_error("nic_bcast: multicast send failed");
    }
    co_return data;
  }
  gm::RecvMessage msg = co_await port.receive();
  if (msg.group != group || msg.tag != tag) {
    throw std::logic_error("nic_bcast: unexpected message");
  }
  co_return std::move(msg.data);
}

}  // namespace nicmcast::mcast

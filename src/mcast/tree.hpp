// Spanning trees for multicast.
//
// The host constructs the tree (the LANai is too slow — paper §5) and
// preposts per-node entries into NIC group tables.  All builders sort the
// destination list by network id first and only ever attach children with
// ids greater than their (non-root) parent: the paper's deadlock-avoidance
// invariant, which makes cyclic parent-child waits impossible across
// concurrent multicasts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "nic/types.hpp"

namespace nicmcast::mcast {

class Tree {
 public:
  Tree() { children_[root_]; }
  explicit Tree(net::NodeId root) : root_(root), order_{root} {
    children_[root];  // the root is always a member
  }

  [[nodiscard]] net::NodeId root() const { return root_; }

  /// Adds `child` under `parent`.  Both become members.
  void add_edge(net::NodeId parent, net::NodeId child);

  [[nodiscard]] bool contains(net::NodeId node) const {
    return children_.contains(node);
  }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  /// Children of `node` in send order.
  [[nodiscard]] const std::vector<net::NodeId>& children(
      net::NodeId node) const;

  /// Parent of `node`; nullopt for the root.
  [[nodiscard]] std::optional<net::NodeId> parent(net::NodeId node) const;

  /// All member node ids (root first, then insertion order).
  [[nodiscard]] std::vector<net::NodeId> nodes() const { return order_; }

  /// Longest root-to-leaf path length in edges.
  [[nodiscard]] std::size_t depth() const;

  /// Largest child count of any member.
  [[nodiscard]] std::size_t max_fanout() const;

  /// The NIC group-table entry for `node`'s role in this tree.
  [[nodiscard]] nic::GroupEntry entry_for(net::NodeId node,
                                          net::PortId port) const;

  /// Checks connectivity and acyclicity; throws std::logic_error on a
  /// malformed tree.
  void validate() const;

  /// The deadlock-avoidance invariant: every non-root parent has an id
  /// smaller than each of its children (paper §5, "Deadlock").
  [[nodiscard]] bool satisfies_id_ordering() const;

  [[nodiscard]] std::string describe() const;

 private:
  net::NodeId root_ = 0;
  std::unordered_map<net::NodeId, std::vector<net::NodeId>> children_;
  std::unordered_map<net::NodeId, net::NodeId> parent_;
  std::vector<net::NodeId> order_{0};  // rewritten by the root constructor
};

/// Sorts and deduplicates destinations, dropping the root if present
/// (shared preprocessing for every tree builder).
[[nodiscard]] std::vector<net::NodeId> normalize_destinations(
    net::NodeId root, std::vector<net::NodeId> dests);

/// Binomial tree (MPICH's default broadcast shape; the paper's host-based
/// baseline).
[[nodiscard]] Tree build_binomial_tree(net::NodeId root,
                                       std::vector<net::NodeId> dests);

/// Chain: root -> d0 -> d1 -> ... (worst latency, minimal fan-out).
[[nodiscard]] Tree build_chain_tree(net::NodeId root,
                                    std::vector<net::NodeId> dests);

/// Flat/star: root sends to everyone directly (pure multisend).
[[nodiscard]] Tree build_flat_tree(net::NodeId root,
                                   std::vector<net::NodeId> dests);

}  // namespace nicmcast::mcast

// Optimal multicast trees in the postal model (Bar-Noy & Kipnis).
//
// The paper (§5, "The Spanning Tree") builds latency-optimal trees by
// keeping the maximum number of nodes sending at any instant: a node keeps
// sending to further destinations until the first destination it sent to is
// itself ready to send.  That count is the ratio of (a) the end-to-end
// message delivery time L and (b) the per-additional-destination cost g —
// both functions of message size, so different sizes yield different tree
// shapes (large fan-out/shallow for small messages, deeper for large).
#pragma once

#include <cstddef>
#include <vector>

#include "mcast/tree.hpp"
#include "net/network.hpp"
#include "nic/config.hpp"
#include "sim/time.hpp"

namespace nicmcast::mcast {

/// The two postal-model parameters for a given message size and transport.
struct PostalCostModel {
  sim::Duration latency{0};  // L: send start -> receiver can send onwards
  sim::Duration gap{0};      // g: cost of one additional destination

  [[nodiscard]] double lambda() const {
    return gap > sim::Duration{0} ? latency / gap : 1.0;
  }

  /// Destinations a sender reaches before its first receiver can start
  /// sending (the paper's fan-out ratio).
  [[nodiscard]] std::size_t fanout() const {
    const double ratio = lambda();
    const auto k = static_cast<std::size_t>(ratio);
    return k < 1 ? 1 : k;
  }

  /// Cost model of the NIC-based multicast: the extra destination costs a
  /// header rewrite plus one message serialisation per packet.
  static PostalCostModel nic_based(std::size_t message_bytes,
                                   const nic::NicConfig& nic,
                                   const net::NetworkConfig& net);

  /// Cost model of the host-based multicast: the extra destination costs a
  /// full send-token processing, pipelined against DMA and the wire.
  static PostalCostModel host_based(std::size_t message_bytes,
                                    const nic::NicConfig& nic,
                                    const net::NetworkConfig& net);
};

/// Greedy postal-model schedule: destinations (sorted by network id) are
/// assigned, in order, to whichever informed node can deliver earliest.
/// Because the informed set always holds the smallest ids, every non-root
/// parent ends up smaller than its children — the deadlock invariant holds
/// by construction.
[[nodiscard]] Tree build_postal_tree(net::NodeId root,
                                     std::vector<net::NodeId> dests,
                                     const PostalCostModel& cost);

}  // namespace nicmcast::mcast

#include "mcast/tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace nicmcast::mcast {

void Tree::add_edge(net::NodeId parent, net::NodeId child) {
  if (!children_.contains(parent)) {
    throw std::logic_error("add_edge: parent not in tree");
  }
  if (children_.contains(child)) {
    throw std::logic_error("add_edge: child already in tree");
  }
  children_[parent].push_back(child);
  children_[child];
  parent_[child] = parent;
  order_.push_back(child);
}

const std::vector<net::NodeId>& Tree::children(net::NodeId node) const {
  auto it = children_.find(node);
  if (it == children_.end()) {
    throw std::out_of_range("children: node not in tree");
  }
  return it->second;
}

std::optional<net::NodeId> Tree::parent(net::NodeId node) const {
  auto it = parent_.find(node);
  if (it == parent_.end()) return std::nullopt;
  return it->second;
}

std::size_t Tree::depth() const {
  std::size_t deepest = 0;
  for (net::NodeId node : order_) {
    std::size_t d = 0;
    for (auto p = parent(node); p; p = parent(*p)) ++d;
    deepest = std::max(deepest, d);
  }
  return deepest;
}

std::size_t Tree::max_fanout() const {
  std::size_t widest = 0;
  for (const auto& [node, kids] : children_) {
    widest = std::max(widest, kids.size());
  }
  return widest;
}

nic::GroupEntry Tree::entry_for(net::NodeId node, net::PortId port) const {
  if (!contains(node)) {
    throw std::out_of_range("entry_for: node not in tree");
  }
  nic::GroupEntry entry;
  entry.port = port;
  entry.parent = parent(node).value_or(nic::kNoNode);
  entry.children = children(node);
  return entry;
}

void Tree::validate() const {
  // Construction already prevents cycles and reconnections (a child may be
  // added once, under an existing parent); check the root and counts.
  if (!children_.contains(root_)) {
    throw std::logic_error("tree: root missing");
  }
  if (parent_.contains(root_)) {
    throw std::logic_error("tree: root has a parent");
  }
  if (order_.size() != children_.size() ||
      parent_.size() + 1 != order_.size()) {
    throw std::logic_error("tree: inconsistent membership");
  }
}

bool Tree::satisfies_id_ordering() const {
  for (const auto& [child, par] : parent_) {
    if (par == root_) continue;  // the root may feed any id
    if (par >= child) return false;
  }
  return true;
}

std::string Tree::describe() const {
  // Plain appends: GCC 12 -Wrestrict false-fires on `const char* +
  // std::string&&` with the 32-bit NodeId to_string overload.
  std::string out = "root=";
  out += std::to_string(root_);
  for (net::NodeId node : order_) {
    const auto& kids = children(node);
    if (kids.empty()) continue;
    out += ' ';
    out += std::to_string(node);
    out += "->[";
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(kids[i]);
    }
    out += "]";
  }
  return out;
}

std::vector<net::NodeId> normalize_destinations(
    net::NodeId root, std::vector<net::NodeId> dests) {
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  std::erase(dests, root);
  return dests;
}

Tree build_binomial_tree(net::NodeId root, std::vector<net::NodeId> dests) {
  dests = normalize_destinations(root, std::move(dests));
  Tree tree(root);
  // Relative rank r: 0 = root, r >= 1 = dests[r - 1] (sorted ascending, so
  // "relative parent < relative child" implies the id-ordering invariant).
  const std::size_t n = dests.size() + 1;
  auto node_of = [&](std::size_t r) {
    return r == 0 ? root : dests[r - 1];
  };
  // Children in ascending-rank order — MPICH 1.2.x's `mask <<= 1` send
  // order: the nearest child first and the deepest subtree last.  This is
  // the send order of the era's MPIR_Bcast and of the paper's host-based
  // baseline; it is what makes the host-based large-message broadcast pay
  // a full message serialisation per sibling ahead of the deep subtree.
  for (std::size_t r = 1; r < n; ++r) {
    const std::size_t parent_rank = r & (r - 1);  // clear the lowest set bit
    tree.add_edge(node_of(parent_rank), node_of(r));
  }
  return tree;
}

Tree build_chain_tree(net::NodeId root, std::vector<net::NodeId> dests) {
  dests = normalize_destinations(root, std::move(dests));
  Tree tree(root);
  net::NodeId prev = root;
  for (net::NodeId d : dests) {
    tree.add_edge(prev, d);
    prev = d;
  }
  return tree;
}

Tree build_flat_tree(net::NodeId root, std::vector<net::NodeId> dests) {
  dests = normalize_destinations(root, std::move(dests));
  Tree tree(root);
  for (net::NodeId d : dests) {
    tree.add_edge(root, d);
  }
  return tree;
}

}  // namespace nicmcast::mcast

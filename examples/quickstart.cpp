// Quickstart: build a simulated 8-node Myrinet/GM cluster, program a
// multicast group into the NICs, and broadcast a message with the
// NIC-based multicast — then compare against the host-based baseline.
//
//   $ ./quickstart
#include <cstdio>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"
#include "mcast/postal_tree.hpp"

using namespace nicmcast;

namespace {

gm::Payload make_message(std::size_t n) {
  gm::Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>('A' + i % 26)};
  }
  return p;
}

double broadcast_once(bool nic_based) {
  // 1. A cluster: 8 nodes, one crossbar switch, LANai-9-class NICs.
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 8});

  // 2. The host builds a latency-optimal spanning tree for this message
  //    size (Bar-Noy/Kipnis postal model) and preposts it into every NIC's
  //    group table.  The host-based baseline uses the classic binomial
  //    tree instead.
  const std::size_t kBytes = 1024;
  std::vector<net::NodeId> dests{1, 2, 3, 4, 5, 6, 7};
  const mcast::Tree tree =
      nic_based
          ? mcast::build_postal_tree(
                0, dests,
                mcast::PostalCostModel::nic_based(kBytes, nic::NicConfig{},
                                                  net::NetworkConfig{}))
          : mcast::build_binomial_tree(0, dests);
  const net::GroupId group = 42;
  if (nic_based) {
    mcast::install_group(cluster, tree, group);
    std::printf("  tree: %s\n", tree.describe().c_str());
  }

  // 3. Receivers pre-post receive buffers (GM receive tokens).
  for (net::NodeId node = 1; node < 8; ++node) {
    cluster.port(node).provide_receive_buffer(4096);
  }

  // 4. Every node runs a small program (a C++20 coroutine); the root
  //    broadcasts, the rest block on the delivered message.
  auto last_done = std::make_shared<sim::TimePoint>();
  cluster.run_on_all([tree, group, nic_based, last_done,
                      kBytes](gm::Cluster& cl,
                              net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = make_message(kBytes);
    gm::Payload got;
    if (nic_based) {
      got = co_await mcast::nic_bcast(cl.port(me), tree, group,
                                      std::move(data), /*tag=*/7);
    } else {
      got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                       /*tag=*/7);
    }
    if (got != make_message(kBytes)) {
      throw std::logic_error("payload mismatch!");
    }
    *last_done = std::max(*last_done, cl.simulator().now());
  });
  cluster.run();
  return last_done->microseconds();
}

}  // namespace

int main() {
  std::printf("NIC-based multicast over a simulated Myrinet/GM-2 cluster\n");
  std::printf("----------------------------------------------------------\n");
  std::printf("host-based broadcast (binomial tree, host forwarding):\n");
  const double hb = broadcast_once(false);
  std::printf("  1KB to 7 destinations in %.2f us\n\n", hb);
  std::printf("NIC-based multicast (optimal tree, NIC forwarding):\n");
  const double nb = broadcast_once(true);
  std::printf("  1KB to 7 destinations in %.2f us\n\n", nb);
  std::printf("improvement factor: %.2fx\n", hb / nb);
  return 0;
}

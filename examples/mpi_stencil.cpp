// A miniature data-parallel application on the mini-MPI: an iterative
// "train-and-sync" loop of the kind the paper's introduction motivates —
// every iteration the master broadcasts the current model (NIC-based
// multicast) and the workers' contributions are combined with Allreduce
// (the paper's §7 future-work collective, built here on the NIC multicast).
//
//   $ ./mpi_stencil
#include <cstdio>
#include <cstring>

#include "mpi/mpi.hpp"

using namespace nicmcast;

namespace {

constexpr int kRanks = 8;
constexpr int kIterations = 5;
constexpr std::size_t kModelInts = 512;  // 4KB "model"

mpi::Payload encode_model(const std::vector<std::int64_t>& m) {
  mpi::Payload p(m.size() * 8);
  std::memcpy(p.data(), m.data(), p.size());
  return p;
}

std::vector<std::int64_t> decode_model(const mpi::Payload& p) {
  std::vector<std::int64_t> m(p.size() / 8);
  std::memcpy(m.data(), p.data(), p.size());
  return m;
}

}  // namespace

int main() {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = kRanks});
  mpi::MpiConfig config;
  config.bcast_algorithm = mpi::BcastAlgorithm::kNicBased;
  mpi::World world(cluster, config);

  world.launch([](mpi::Process& self) -> sim::Task<void> {
    std::vector<std::int64_t> model(kModelInts, 0);
    for (int iter = 0; iter < kIterations; ++iter) {
      // 1. Master broadcasts the model (NIC-based multicast after the
      //    demand-driven group creation on iteration 0).
      mpi::Payload blob(kModelInts * 8);
      if (self.rank() == 0) blob = encode_model(model);
      co_await self.bcast(blob, 0);
      model = decode_model(blob);

      // 2. Every worker computes a contribution from "its shard".
      std::vector<std::int64_t> delta(kModelInts);
      for (std::size_t i = 0; i < kModelInts; ++i) {
        delta[i] = static_cast<std::int64_t>((self.rank() + 1) * (iter + 1));
      }

      // 3. Combine with Allreduce (reduce up the tree, NIC-multicast the
      //    sum back down).
      const auto sum =
          co_await self.allreduce_sum(self.world_comm(), delta);
      for (std::size_t i = 0; i < kModelInts; ++i) model[i] += sum[i];

      if (self.rank() == 0) {
        std::printf("[%9.1fus] iteration %d: model[0] = %lld\n",
                    self.simulator().now().microseconds(), iter,
                    static_cast<long long>(model[0]));
      }
      co_await self.barrier();
    }

    // Verify: after T iterations, model[0] = sum_t (t+1) * sum_r (r+1)
    //       = (1+..+T_t) * 36 for 8 ranks.
    std::int64_t expected = 0;
    for (int t = 1; t <= kIterations; ++t) expected += 36LL * t;
    if (model[0] != expected) {
      std::printf("rank %d: MISMATCH %lld != %lld\n", self.rank(),
                  static_cast<long long>(model[0]),
                  static_cast<long long>(expected));
      throw std::logic_error("model diverged");
    }
    if (self.rank() == 0) {
      std::printf("all %d ranks converged to model[0] = %lld  [OK]\n",
                  kRanks, static_cast<long long>(expected));
      std::printf("multicast groups created on rank 0: %llu (demand-driven,"
                  " then reused)\n",
                  static_cast<unsigned long long>(
                      self.stats().groups_created));
    }
  });
  world.run();
  return 0;
}

// Tree explorer: shows how the optimal (postal-model) multicast tree's
// shape changes with message size — the paper's §5 observation that
// "different message lengths lead to different optimal tree topologies".
//
//   $ ./tree_explorer [nodes]
#include <cstdio>
#include <cstdlib>

#include "mcast/postal_tree.hpp"

using namespace nicmcast;

namespace {

void show(std::size_t nodes, std::size_t bytes) {
  std::vector<net::NodeId> dests;
  for (net::NodeId i = 1; i < nodes; ++i) dests.push_back(i);

  const auto cost = mcast::PostalCostModel::nic_based(bytes, nic::NicConfig{},
                                                      net::NetworkConfig{});
  const mcast::Tree tree = mcast::build_postal_tree(0, dests, cost);
  std::printf("%7zu B | L=%7.2fus g=%7.2fus lambda=%5.2f | depth %zu, max "
              "fan-out %zu\n",
              bytes, cost.latency.microseconds(), cost.gap.microseconds(),
              cost.lambda(), tree.depth(), tree.max_fanout());
  std::printf("          %s\n", tree.describe().c_str());
  if (!tree.satisfies_id_ordering()) {
    std::printf("          WARNING: deadlock-avoidance ordering violated!\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  std::printf("Optimal NIC-multicast trees for %zu nodes "
              "(root 0; postal model L/g)\n", nodes);
  std::printf("Every tree satisfies the paper's deadlock-avoidance rule: a\n"
              "non-root parent's id is smaller than all of its children's.\n\n");
  for (std::size_t bytes : {1u, 64u, 512u, 2048u, 4096u, 8192u, 16384u,
                            65536u}) {
    show(nodes, bytes);
  }
  std::printf("\nSmall messages: replicas are cheap -> wide, shallow trees.\n"
              "Large messages: each replica costs a full serialisation -> \n"
              "narrow, deeper trees that exploit per-packet forwarding.\n");
  return 0;
}

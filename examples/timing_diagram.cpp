// Reproduces the paper's Figure 2 timing diagrams as live event traces:
//   (a) host-based multiple unicasts — the NIC re-processes one send token
//       per destination,
//   (b) NIC-based multisend — one token, replicas chained by the GM-2
//       packet-descriptor callback (header rewrites),
//   (c) NIC-based forwarding — an intermediate NIC forwards packets
//       without its host ever being involved.
//
//   $ ./timing_diagram
#include <cstdio>
#include <iostream>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"
#include "sim/timeline.hpp"

using namespace nicmcast;

namespace {

void banner(const char* which) {
  std::printf("\n----- %s -----\n", which);
}

void scenario_a_host_based() {
  banner("(a) host-based multiple unicasts: 4 send tokens, 4 host DMAs");
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 5});
  cluster.simulator().tracer().enable("net");
  cluster.simulator().tracer().set_sink(&std::cout);
  cluster.simulator().tracer().set_retain(false);
  for (net::NodeId n = 1; n < 5; ++n) {
    cluster.port(n).provide_receive_buffer(4096);
  }
  cluster.simulator().spawn([](gm::Cluster& cl) -> sim::Task<void> {
    std::vector<nic::OpHandle> handles;
    for (net::NodeId d = 1; d < 5; ++d) {
      co_await cl.simulator().wait(
          cl.port(0).nic().config().host_post_overhead);
      handles.push_back(cl.port(0).post_send_nowait(d, 0, gm::Payload(512), 0));
    }
    for (auto h : handles) co_await cl.port(0).wait_completion(h);
    std::printf("[%8.2fus] host: all four unicasts acknowledged\n",
                cl.simulator().now().microseconds());
  }(cluster));
  cluster.run();
}

void scenario_b_multisend() {
  banner("(b) NIC-based multisend: 1 token, 1 host DMA, 3 header rewrites");
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 5});
  cluster.simulator().tracer().enable("net");
  cluster.simulator().tracer().set_sink(&std::cout);
  cluster.simulator().tracer().set_retain(false);
  for (net::NodeId n = 1; n < 5; ++n) {
    cluster.port(n).provide_receive_buffer(4096);
  }
  cluster.simulator().spawn([](gm::Cluster& cl) -> sim::Task<void> {
    std::vector<net::NodeId> dests{1, 2, 3, 4};
    co_await cl.port(0).multisend(std::move(dests), 0, gm::Payload(512), 0);
    std::printf("[%8.2fus] host: multisend acknowledged by all (header "
                "rewrites: %llu)\n",
                cl.simulator().now().microseconds(),
                static_cast<unsigned long long>(
                    cl.nic(0).stats().header_rewrites));
  }(cluster));
  cluster.run();
}

void scenario_c_forwarding() {
  banner("(c) NIC-based forwarding: 0 -> 1 -> 2, node 1's host stays idle");
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 3});
  cluster.simulator().tracer().enable("net");
  cluster.simulator().tracer().enable("mcast");
  cluster.simulator().tracer().set_sink(&std::cout);
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  mcast::install_group(cluster, tree, 9);
  cluster.port(1).provide_receive_buffer(16384);
  cluster.port(2).provide_receive_buffer(16384);
  // Only the root and the LEAF run programs; node 1's host is deliberately
  // absent — its NIC forwards anyway.
  cluster.simulator().spawn([](gm::Cluster& cl,
                               const mcast::Tree& t) -> sim::Task<void> {
    co_await mcast::nic_bcast(cl.port(0), t, 9, gm::Payload(8192), 1);
    std::printf("[%8.2fus] root: multicast acknowledged down the tree\n",
                cl.simulator().now().microseconds());
  }(cluster, tree));
  cluster.simulator().spawn([](gm::Cluster& cl) -> sim::Task<void> {
    gm::RecvMessage m = co_await cl.port(2).receive();
    std::printf("[%8.2fus] leaf: received %zu bytes (node 1 forwarded %llu "
                "packets without host involvement)\n",
                cl.simulator().now().microseconds(), m.data.size(),
                static_cast<unsigned long long>(cl.nic(1).stats().forwards));
  }(cluster));
  cluster.run();

  // The same events as a swimlane (one lane per actor, time left to
  // right) — the shape of the paper's Figure 2c.
  std::printf("\nswimlane:\n%s",
              sim::render_timeline(cluster.simulator().tracer().records(),
                                   {.width = 68, .max_legend = 8})
                  .c_str());
}

}  // namespace

int main() {
  std::printf("Figure 2 timing diagrams, reproduced as event traces.\n");
  scenario_a_host_based();
  scenario_b_multisend();
  scenario_c_forwarding();
  return 0;
}

// Reliability walk-through: multicast over a deliberately bad fabric, with
// scripted faults showing the three recovery mechanisms —
//   * a dropped replica recovered by the ROOT (per-child selective
//     retransmission: only the starved child is retried),
//   * a dropped forwarded packet recovered by the INTERMEDIATE NIC from
//     its host-memory replica (not by the root),
//   * a lost acknowledgment absorbed as a duplicate (re-acked, dropped).
//
//   $ ./lossy_network
#include <cstdio>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"

using namespace nicmcast;

namespace {

void broadcast_under(const char* title,
                     std::unique_ptr<net::ScriptedFaults> faults) {
  std::printf("\n----- %s -----\n", title);
  gm::Cluster cluster(gm::ClusterConfig{
      .nodes = 4, .nic = {.retransmit_timeout = sim::usec(200)}});
  cluster.network().set_fault_injector(std::move(faults));

  // Tree: 0 -> {1, 2}, 1 -> {3}.
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(1, 3);
  mcast::install_group(cluster, tree, 5);
  for (net::NodeId n = 1; n < 4; ++n) {
    cluster.port(n).provide_receive_buffer(4096);
  }

  cluster.run_on_all([tree](gm::Cluster& cl,
                            net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = gm::Payload(1500, std::byte{0x2a});
    gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 5,
                                                std::move(data), 1);
    if (got != gm::Payload(1500, std::byte{0x2a})) {
      throw std::logic_error("corrupted delivery");
    }
    std::printf("  [%8.2fus] node %u delivered 1500 bytes intact\n",
                cl.simulator().now().microseconds(), me);
  });
  cluster.run();

  for (net::NodeId n = 0; n < 4; ++n) {
    const auto& s = cluster.nic(n).stats();
    if (s.retransmissions || s.duplicate_drops || s.crc_drops) {
      std::printf("  node %u NIC: %llu retransmission(s), %llu duplicate "
                  "drop(s), %llu CRC drop(s)\n",
                  n, static_cast<unsigned long long>(s.retransmissions),
                  static_cast<unsigned long long>(s.duplicate_drops),
                  static_cast<unsigned long long>(s.crc_drops));
    }
  }
}

}  // namespace

int main() {
  std::printf("NIC-based multicast reliability under scripted faults\n");
  std::printf("Tree: 0 -> {1, 2}, 1 -> {3}; 1500-byte message.\n");

  {
    auto faults = std::make_unique<net::ScriptedFaults>();
    faults->add_rule({.type = net::PacketType::kMcastData, .dst = 2},
                     net::FaultAction::kDrop);
    broadcast_under("replica to node 2 dropped once (root retries node 2 "
                    "ONLY)", std::move(faults));
  }
  {
    auto faults = std::make_unique<net::ScriptedFaults>();
    faults->add_rule({.type = net::PacketType::kMcastData, .src = 1,
                      .dst = 3},
                     net::FaultAction::kDrop);
    broadcast_under("forwarded packet 1->3 dropped once (node 1 recovers "
                    "from its host-memory replica)", std::move(faults));
  }
  {
    auto faults = std::make_unique<net::ScriptedFaults>();
    faults->add_rule({.type = net::PacketType::kMcastAck},
                     net::FaultAction::kDrop);
    broadcast_under("an acknowledgment dropped once (duplicate re-acked)",
                    std::move(faults));
  }
  {
    auto faults = std::make_unique<net::ScriptedFaults>();
    faults->add_rule({.type = net::PacketType::kMcastData},
                     net::FaultAction::kCorrupt);
    broadcast_under("a data packet corrupted once (CRC drop + retry)",
                    std::move(faults));
  }
  return 0;
}

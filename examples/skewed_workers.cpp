// Skewed workers: a master repeatedly broadcasts work descriptors to
// workers that are busy for random amounts of time (process skew).  With
// the host-based broadcast, one slow worker in the middle of the tree
// stalls everyone below it; with the NIC-based multicast the NIC forwards
// regardless and the late workers find their data already delivered.
//
//   $ ./skewed_workers
#include <cstdio>

#include "mpi/mpi.hpp"
#include "sim/stats.hpp"

using namespace nicmcast;

namespace {

struct Outcome {
  double avg_wait_us = 0;   // time spent blocked in bcast per worker
  double makespan_us = 0;   // total simulated time
};

Outcome run(mpi::BcastAlgorithm algorithm) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 16});
  mpi::MpiConfig config;
  config.bcast_algorithm = algorithm;
  mpi::World world(cluster, config);

  const int kRounds = 20;
  auto total_wait = std::make_shared<sim::OnlineStats>();
  world.launch([total_wait, kRounds](mpi::Process& self) -> sim::Task<void> {
    sim::Rng rng(1234 + self.rank());
    for (int round = 0; round < kRounds; ++round) {
      co_await self.barrier();
      if (self.rank() != 0) {
        // Simulate uneven per-worker computation: 0..600us.
        co_await self.simulator().wait(sim::usec(rng.uniform(0, 600)));
      }
      mpi::Payload work(256);
      if (self.rank() == 0) {
        std::fill(work.begin(), work.end(),
                  std::byte{static_cast<std::uint8_t>(round)});
      }
      co_await self.bcast(work, 0);
      if (work != mpi::Payload(256, std::byte{static_cast<std::uint8_t>(
                                        round)})) {
        throw std::logic_error("bad work descriptor");
      }
      total_wait->add(self.stats().last_bcast_time.microseconds());
    }
  });
  world.run();

  return Outcome{total_wait->mean(),
                 cluster.simulator().now().microseconds()};
}

}  // namespace

int main() {
  std::printf("16 workers with random 0-600us skew, 20 broadcast rounds\n");
  std::printf("--------------------------------------------------------\n");
  const Outcome hb = run(mpi::BcastAlgorithm::kHostBased);
  std::printf("host-based : avg time blocked in MPI_Bcast %7.1f us "
              "(makespan %.0f us)\n",
              hb.avg_wait_us, hb.makespan_us);
  const Outcome nb = run(mpi::BcastAlgorithm::kNicBased);
  std::printf("NIC-based  : avg time blocked in MPI_Bcast %7.1f us "
              "(makespan %.0f us)\n",
              nb.avg_wait_us, nb.makespan_us);
  std::printf("\nCPU-time improvement: %.1fx — workers stop paying for "
              "each other's skew.\n",
              hb.avg_wait_us / nb.avg_wait_us);
  return 0;
}
